// Arbitrary-precision signed integer.
//
// Why this exists: Algorithm 1 of the paper (AlmostUniversalRV) executes
// waits lasting 2^(15 i^2) local time units in phase i. Already at phase 2
// that is 2^60 absolute time units, beyond the contiguous integer range of
// IEEE double (2^53), and at phase 6 it is 2^540. Rendezvous, however, is
// decided by sub-unit differences between event times, so simulated time
// must be *exact*. BigInt underlies numeric::Rational, the exact time type.
//
// Representation: sign/magnitude, little-endian 64-bit limbs, no leading
// zero limbs, zero is { sign = 0, limbs empty }. Limbs live in a
// small-buffer-optimized vector (LimbVec): values up to 128 bits — the
// overwhelming majority of intermediates once Rational has peeled off its
// int64 fast tier — are stored inline and never touch the heap.
#pragma once

#include <compare>
#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace aurv::numeric {

/// Small-buffer-optimized vector of 64-bit limbs: the first two limbs are
/// stored inline (128-bit magnitudes never allocate); larger values spill to
/// the heap. Shrinking never releases capacity, so in-place arithmetic that
/// grows and re-trims (add carry, shift, gcd) reuses its buffer instead of
/// churning the allocator.
class LimbVec {
 public:
  using value_type = std::uint64_t;

  // User-provided (not defaulted) so `const BigInt x;` default-initializes;
  // deliberately leaves the inline buffer uninitialized (size_ == 0).
  LimbVec() noexcept {}  // NOLINT(modernize-use-equals-default)
  LimbVec(const LimbVec& other) { assign_from(other); }
  LimbVec(LimbVec&& other) noexcept { steal_from(other); }
  LimbVec& operator=(const LimbVec& other) {
    if (this != &other) {
      size_ = 0;
      assign_from(other);
    }
    return *this;
  }
  LimbVec& operator=(LimbVec&& other) noexcept {
    if (this != &other) {
      release();
      steal_from(other);
    }
    return *this;
  }
  ~LimbVec() { release(); }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// True while the limbs live in the inline buffer (observability for
  /// tests; semantics never depend on it).
  [[nodiscard]] bool is_inline() const noexcept { return heap_ == nullptr; }

  [[nodiscard]] value_type* data() noexcept { return heap_ != nullptr ? heap_ : inline_; }
  [[nodiscard]] const value_type* data() const noexcept {
    return heap_ != nullptr ? heap_ : inline_;
  }

  value_type& operator[](std::size_t index) noexcept { return data()[index]; }
  const value_type& operator[](std::size_t index) const noexcept { return data()[index]; }
  value_type& back() noexcept { return data()[size_ - 1]; }
  [[nodiscard]] const value_type& back() const noexcept { return data()[size_ - 1]; }

  [[nodiscard]] value_type* begin() noexcept { return data(); }
  [[nodiscard]] value_type* end() noexcept { return data() + size_; }
  [[nodiscard]] const value_type* begin() const noexcept { return data(); }
  [[nodiscard]] const value_type* end() const noexcept { return data() + size_; }

  void clear() noexcept { size_ = 0; }
  void pop_back() noexcept { --size_; }

  void push_back(value_type limb) {
    if (size_ == capacity_) grow(size_ + 1);
    data()[size_++] = limb;
  }

  void reserve(std::size_t count) {
    if (count > capacity_) grow(count);
  }

  /// Grow zero-fills; shrink just drops the tail (capacity retained).
  void resize(std::size_t count) {
    if (count > size_) {
      if (count > capacity_) grow(count);
      std::memset(data() + size_, 0, (count - size_) * sizeof(value_type));
    }
    size_ = count;
  }

  void assign(std::size_t count, value_type limb) {
    if (count > capacity_) {
      size_ = 0;  // nothing to preserve across the reallocation
      grow(count);
    }
    value_type* out = data();
    for (std::size_t i = 0; i < count; ++i) out[i] = limb;
    size_ = count;
  }

  friend bool operator==(const LimbVec& lhs, const LimbVec& rhs) noexcept {
    if (lhs.size_ != rhs.size_) return false;
    return std::memcmp(lhs.data(), rhs.data(), lhs.size_ * sizeof(value_type)) == 0;
  }

 private:
  static constexpr std::size_t kInlineLimbs = 2;

  void grow(std::size_t needed) {
    std::size_t new_capacity = capacity_ * 2;
    if (new_capacity < needed) new_capacity = needed;
    auto* fresh = new value_type[new_capacity];
    std::memcpy(fresh, data(), size_ * sizeof(value_type));
    release();
    heap_ = fresh;
    capacity_ = new_capacity;
  }

  void assign_from(const LimbVec& other) {
    reserve(other.size_);
    std::memcpy(data(), other.data(), other.size_ * sizeof(value_type));
    size_ = other.size_;
  }

  /// Leaves `other` empty with inline storage.
  void steal_from(LimbVec& other) noexcept {
    if (other.heap_ != nullptr) {
      heap_ = std::exchange(other.heap_, nullptr);
      capacity_ = std::exchange(other.capacity_, kInlineLimbs);
      size_ = std::exchange(other.size_, 0);
    } else {
      heap_ = nullptr;
      capacity_ = kInlineLimbs;
      size_ = other.size_;
      std::memcpy(inline_, other.inline_, size_ * sizeof(value_type));
      other.size_ = 0;
    }
  }

  void release() noexcept {
    delete[] heap_;
    heap_ = nullptr;
    capacity_ = kInlineLimbs;
  }

  std::size_t size_ = 0;
  std::size_t capacity_ = kInlineLimbs;
  value_type* heap_ = nullptr;
  value_type inline_[kInlineLimbs];
};

class BigInt {
 public:
  // NOLINTBEGIN(google-explicit-constructor) — integers convert implicitly
  // by design; BigInt is a drop-in integer type.
  BigInt() = default;
  BigInt(int value) : BigInt(static_cast<long long>(value)) {}
  BigInt(long value) : BigInt(static_cast<long long>(value)) {}
  BigInt(long long value);
  BigInt(unsigned int value) : BigInt(static_cast<unsigned long long>(value)) {}
  BigInt(unsigned long value) : BigInt(static_cast<unsigned long long>(value)) {}
  BigInt(unsigned long long value);
  // NOLINTEND(google-explicit-constructor)

  /// Parses an optionally signed decimal string, e.g. "-123456...".
  /// Throws std::invalid_argument on malformed input.
  static BigInt from_string(std::string_view text);

  /// 2^exponent. The workhorse for the paper's dyadic quantities.
  static BigInt pow2(std::uint64_t exponent);

  [[nodiscard]] bool is_zero() const noexcept { return sign_ == 0; }
  [[nodiscard]] bool is_negative() const noexcept { return sign_ < 0; }
  [[nodiscard]] int sign() const noexcept { return sign_; }

  /// Number of significant bits of |*this| (0 for zero).
  [[nodiscard]] std::uint64_t bit_length() const noexcept;

  /// True iff |*this| is a power of two (zero -> false).
  [[nodiscard]] bool is_pow2() const noexcept;

  /// Number of trailing zero bits of |*this|; undefined for zero (checked).
  [[nodiscard]] std::uint64_t trailing_zero_bits() const;

  /// True while the limbs fit the inline small buffer, i.e. |*this| < 2^128
  /// and no heap spill has happened (observability for tests/benchmarks).
  [[nodiscard]] bool is_inline() const noexcept { return limbs_.is_inline(); }

  [[nodiscard]] BigInt operator-() const;
  [[nodiscard]] BigInt abs() const;
  /// In-place negation (sign flip; zero stays zero). No copy, unlike
  /// unary minus.
  void negate() noexcept { sign_ = -sign_; }

  BigInt& operator+=(const BigInt& rhs);
  BigInt& operator-=(const BigInt& rhs);
  BigInt& operator*=(const BigInt& rhs);
  BigInt& operator<<=(std::uint64_t bits);
  BigInt& operator>>=(std::uint64_t bits);  // arithmetic toward zero on magnitude

  friend BigInt operator+(BigInt lhs, const BigInt& rhs) { return lhs += rhs; }
  friend BigInt operator-(BigInt lhs, const BigInt& rhs) { return lhs -= rhs; }
  friend BigInt operator*(BigInt lhs, const BigInt& rhs) { return lhs *= rhs; }
  friend BigInt operator<<(BigInt lhs, std::uint64_t bits) { return lhs <<= bits; }
  friend BigInt operator>>(BigInt lhs, std::uint64_t bits) { return lhs >>= bits; }

  /// *this += sign_mult * (rhs << shift_bits) without materializing the
  /// shifted temporary in the common same-sign case. The shift-align
  /// workhorse of dyadic Rational addition/subtraction; sign_mult must be
  /// +1 or -1.
  void add_shifted(const BigInt& rhs, std::uint64_t shift_bits, int sign_mult = 1);

  /// Truncated division (C semantics: quotient rounds toward zero,
  /// remainder has the sign of the dividend). Divisor must be nonzero.
  struct DivModResult;
  [[nodiscard]] static DivModResult divmod(const BigInt& dividend, const BigInt& divisor);
  friend BigInt operator/(const BigInt& lhs, const BigInt& rhs);
  friend BigInt operator%(const BigInt& lhs, const BigInt& rhs);

  friend bool operator==(const BigInt& lhs, const BigInt& rhs) noexcept = default;
  friend std::strong_ordering operator<=>(const BigInt& lhs, const BigInt& rhs) noexcept;

  /// Greatest common divisor of |a| and |b| (gcd(0,0) == 0).
  [[nodiscard]] static BigInt gcd(BigInt a, BigInt b);

  /// Nearest double (round-to-nearest on the top 54 bits; +/-inf on overflow).
  [[nodiscard]] double to_double() const noexcept;

  /// |*this| >> shift when that fits in an unsigned 128-bit word, reading
  /// the limbs directly — no temporary, no allocation. Used by the filtered
  /// numeric kernel to lift big-tier dyadic values into its fixed-width
  /// two-limb tier (numeric/filter.hpp) without touching the heap.
  [[nodiscard]] std::optional<unsigned __int128> magnitude_shifted(
      std::uint64_t shift) const noexcept;

  /// Exact conversion when the value fits in int64; throws std::overflow_error
  /// otherwise.
  [[nodiscard]] std::int64_t to_int64() const;
  [[nodiscard]] bool fits_int64() const noexcept;

  [[nodiscard]] std::string to_string() const;

 private:
  static int compare_magnitudes(const LimbVec& a, const LimbVec& b) noexcept;
  static void add_magnitudes(LimbVec& acc, const LimbVec& rhs);
  // Requires |acc| >= |rhs|.
  static void sub_magnitudes(LimbVec& acc, const LimbVec& rhs);
  // acc = rhs - acc in place; requires |rhs| >= |acc|.
  static void rsub_magnitudes(LimbVec& acc, const LimbVec& rhs);
  /// Signed accumulate: *this += sign(rhs_sign) * |rhs|. Shared by += and -=
  /// so subtraction does not copy-negate its operand.
  BigInt& accumulate(const BigInt& rhs, int rhs_sign);
  void trim() noexcept;

  int sign_ = 0;
  LimbVec limbs_;
};

struct BigInt::DivModResult {
  BigInt quotient;
  BigInt remainder;
};

}  // namespace aurv::numeric
