// Arbitrary-precision signed integer.
//
// Why this exists: Algorithm 1 of the paper (AlmostUniversalRV) executes
// waits lasting 2^(15 i^2) local time units in phase i. Already at phase 2
// that is 2^60 absolute time units, beyond the contiguous integer range of
// IEEE double (2^53), and at phase 6 it is 2^540. Rendezvous, however, is
// decided by sub-unit differences between event times, so simulated time
// must be *exact*. BigInt underlies numeric::Rational, the exact time type.
//
// Representation: sign/magnitude, little-endian 64-bit limbs, no leading
// zero limbs, zero is { sign = 0, limbs empty }.
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace aurv::numeric {

class BigInt {
 public:
  // NOLINTBEGIN(google-explicit-constructor) — integers convert implicitly
  // by design; BigInt is a drop-in integer type.
  BigInt() = default;
  BigInt(int value) : BigInt(static_cast<long long>(value)) {}
  BigInt(long value) : BigInt(static_cast<long long>(value)) {}
  BigInt(long long value);
  BigInt(unsigned int value) : BigInt(static_cast<unsigned long long>(value)) {}
  BigInt(unsigned long value) : BigInt(static_cast<unsigned long long>(value)) {}
  BigInt(unsigned long long value);
  // NOLINTEND(google-explicit-constructor)

  /// Parses an optionally signed decimal string, e.g. "-123456...".
  /// Throws std::invalid_argument on malformed input.
  static BigInt from_string(std::string_view text);

  /// 2^exponent. The workhorse for the paper's dyadic quantities.
  static BigInt pow2(std::uint64_t exponent);

  [[nodiscard]] bool is_zero() const noexcept { return sign_ == 0; }
  [[nodiscard]] bool is_negative() const noexcept { return sign_ < 0; }
  [[nodiscard]] int sign() const noexcept { return sign_; }

  /// Number of significant bits of |*this| (0 for zero).
  [[nodiscard]] std::uint64_t bit_length() const noexcept;

  /// True iff |*this| is a power of two (zero -> false).
  [[nodiscard]] bool is_pow2() const noexcept;

  /// Number of trailing zero bits of |*this|; undefined for zero (checked).
  [[nodiscard]] std::uint64_t trailing_zero_bits() const;

  [[nodiscard]] BigInt operator-() const;
  [[nodiscard]] BigInt abs() const;

  BigInt& operator+=(const BigInt& rhs);
  BigInt& operator-=(const BigInt& rhs);
  BigInt& operator*=(const BigInt& rhs);
  BigInt& operator<<=(std::uint64_t bits);
  BigInt& operator>>=(std::uint64_t bits);  // arithmetic toward zero on magnitude

  friend BigInt operator+(BigInt lhs, const BigInt& rhs) { return lhs += rhs; }
  friend BigInt operator-(BigInt lhs, const BigInt& rhs) { return lhs -= rhs; }
  friend BigInt operator*(BigInt lhs, const BigInt& rhs) { return lhs *= rhs; }
  friend BigInt operator<<(BigInt lhs, std::uint64_t bits) { return lhs <<= bits; }
  friend BigInt operator>>(BigInt lhs, std::uint64_t bits) { return lhs >>= bits; }

  /// Truncated division (C semantics: quotient rounds toward zero,
  /// remainder has the sign of the dividend). Divisor must be nonzero.
  struct DivModResult;
  [[nodiscard]] static DivModResult divmod(const BigInt& dividend, const BigInt& divisor);
  friend BigInt operator/(const BigInt& lhs, const BigInt& rhs);
  friend BigInt operator%(const BigInt& lhs, const BigInt& rhs);

  friend bool operator==(const BigInt& lhs, const BigInt& rhs) noexcept = default;
  friend std::strong_ordering operator<=>(const BigInt& lhs, const BigInt& rhs) noexcept;

  /// Greatest common divisor of |a| and |b| (gcd(0,0) == 0).
  [[nodiscard]] static BigInt gcd(BigInt a, BigInt b);

  /// Nearest double (round-to-nearest on the top 54 bits; +/-inf on overflow).
  [[nodiscard]] double to_double() const noexcept;

  /// Exact conversion when the value fits in int64; throws std::overflow_error
  /// otherwise.
  [[nodiscard]] std::int64_t to_int64() const;
  [[nodiscard]] bool fits_int64() const noexcept;

  [[nodiscard]] std::string to_string() const;

 private:
  static int compare_magnitudes(const std::vector<std::uint64_t>& a,
                                const std::vector<std::uint64_t>& b) noexcept;
  static void add_magnitudes(std::vector<std::uint64_t>& acc,
                             const std::vector<std::uint64_t>& rhs);
  // Requires |acc| >= |rhs|.
  static void sub_magnitudes(std::vector<std::uint64_t>& acc,
                             const std::vector<std::uint64_t>& rhs);
  void trim() noexcept;

  int sign_ = 0;
  std::vector<std::uint64_t> limbs_;
};

struct BigInt::DivModResult {
  BigInt quotient;
  BigInt remainder;
};

}  // namespace aurv::numeric
