// Exact rational arithmetic — the library's *time* type.
//
// Every duration in the paper's algorithms is a rational number of local
// time units (in fact a dyadic one, k/2^i), every agent clock rate tau,
// speed v and delay t accepted by the simulator is rational, so every event
// time is rational and event ordering is decided exactly — even when the
// integer part has hundreds of bits (phase-i waits of 2^(15 i^2) units) and
// the fractional part is 2^-i.
//
// Representation: a two-tier value. Values whose numerator and denominator
// fit comfortably in int64 (the overwhelming majority of simulation event
// arithmetic) are stored inline and combined with __int128 intermediates;
// anything larger promotes transparently to heap-allocated BigInt. The big
// tier additionally carries a *dyadic tag*: when the denominator is a power
// of two (virtually always in simulator arithmetic — the paper's quantities
// are k/2^i) its exponent is cached, and +=, -=, *, <=> reduce to
// shift-align + integer add/compare, skipping BigInt::gcd and the cross
// multiplications entirely. The general-rational path remains as fallback
// with bit-exact identical results. The fast path matters: the simulator
// performs a handful of rational ops per event and is rational-arithmetic
// bound (see bench/micro_kernels).
//
// Invariants: denominator > 0, gcd(|num|, den) == 1, zero is 0/1; the
// inline tier is used whenever |num| and den < 2^62; in the big tier,
// den_exp == e iff den == 2^e, else -1.
#pragma once

#include <compare>
#include <cstdint>
#include <memory>
#include <string>

#include "numeric/bigint.hpp"

namespace aurv::numeric {

class Rational {
 public:
  // NOLINTBEGIN(google-explicit-constructor) — integers convert implicitly
  // by design; Rational is a drop-in number type.
  Rational() = default;
  Rational(int value) : num_(value) {}
  Rational(long value) : Rational(static_cast<long long>(value)) {}
  Rational(long long value);
  Rational(BigInt value);
  // NOLINTEND(google-explicit-constructor)
  /// numerator/denominator; denominator must be nonzero.
  Rational(BigInt numerator, BigInt denominator);

  Rational(const Rational& other) { copy_from(other); }
  Rational(Rational&& other) noexcept = default;
  Rational& operator=(const Rational& other) {
    if (this != &other) copy_from(other);
    return *this;
  }
  Rational& operator=(Rational&& other) noexcept = default;
  ~Rational() = default;

  /// k / 2^i — the dyadic quantities the paper's algorithms are built from.
  static Rational dyadic(long long numerator, std::uint64_t pow2_exponent);

  /// 2^i as a rational.
  static Rational pow2(std::uint64_t exponent);

  /// Parses "a/b" or "a" (decimal integers). Throws on malformed input.
  static Rational from_string(std::string_view text);

  /// Exact conversion of a finite double (every finite double is a dyadic
  /// rational m * 2^e). Throws std::invalid_argument for NaN/inf.
  static Rational from_double(double value);

  /// m * 2^s for a two-limb mantissa (s of either sign). The bridge back
  /// from the filtered kernel's fixed-width dyadic tier (numeric/filter.hpp).
  static Rational from_dyadic128(__int128 mantissa, std::int64_t pow2_shift);

  /// Two-limb dyadic view: when the value equals m * 2^s with |m| < 2^127
  /// after stripping trailing zero bits, fills the outputs and returns true.
  /// Never allocates (the hot extraction path of the filtered kernel); a
  /// false return means the value is either non-dyadic or needs more than
  /// 128 mantissa bits and must stay in the Rational tier.
  [[nodiscard]] bool dyadic128_view(__int128& mantissa,
                                    std::int64_t& pow2_shift) const noexcept;

  /// Numerator/denominator as BigInt (by value: the inline tier stores
  /// machine integers, not BigInts).
  [[nodiscard]] BigInt numerator() const;
  [[nodiscard]] BigInt denominator() const;

  [[nodiscard]] bool is_zero() const noexcept { return big_ ? big_->num.is_zero() : num_ == 0; }
  [[nodiscard]] bool is_negative() const noexcept {
    return big_ ? big_->num.is_negative() : num_ < 0;
  }
  [[nodiscard]] bool is_integer() const noexcept {
    return big_ ? big_->den_exp == 0 : den_ == 1;
  }
  [[nodiscard]] int sign() const noexcept {
    if (big_) return big_->num.sign();
    return num_ == 0 ? 0 : (num_ < 0 ? -1 : 1);
  }

  /// True when stored in the inline int64 tier (observability for tests
  /// and benchmarks; semantics never depend on the tier).
  [[nodiscard]] bool is_inline() const noexcept { return big_ == nullptr; }

  /// True when the denominator is a power of two (k / 2^e), i.e. the value
  /// is eligible for the shift-align fast paths. Observability, like
  /// is_inline(): semantics never depend on it.
  [[nodiscard]] bool is_dyadic() const noexcept {
    return big_ ? big_->den_exp >= 0 : (den_ & (den_ - 1)) == 0;
  }

  [[nodiscard]] Rational operator-() const;
  [[nodiscard]] Rational abs() const;
  /// Multiplicative inverse; *this must be nonzero.
  [[nodiscard]] Rational reciprocal() const;

  Rational& operator+=(const Rational& rhs);
  Rational& operator-=(const Rational& rhs);
  Rational& operator*=(const Rational& rhs);
  Rational& operator/=(const Rational& rhs);

  friend Rational operator+(Rational lhs, const Rational& rhs) { return lhs += rhs; }
  friend Rational operator-(Rational lhs, const Rational& rhs) { return lhs -= rhs; }
  friend Rational operator*(Rational lhs, const Rational& rhs) { return lhs *= rhs; }
  friend Rational operator/(Rational lhs, const Rational& rhs) { return lhs /= rhs; }

  friend bool operator==(const Rational& lhs, const Rational& rhs) noexcept;
  friend std::strong_ordering operator<=>(const Rational& lhs, const Rational& rhs) noexcept;

  /// Largest integer <= *this.
  [[nodiscard]] BigInt floor() const;
  /// Smallest integer >= *this.
  [[nodiscard]] BigInt ceil() const;

  /// Nearest double. Exact-ish even for huge numerator/denominator: the
  /// quotient is computed from aligned high bits, not via double division
  /// of the (possibly overflowing) parts.
  [[nodiscard]] double to_double() const noexcept;

  [[nodiscard]] std::string to_string() const;

  friend Rational min(const Rational& a, const Rational& b) { return a <= b ? a : b; }
  friend Rational max(const Rational& a, const Rational& b) { return a >= b ? a : b; }

 private:
  struct Big {
    BigInt num;
    BigInt den;            // > 0, coprime with num
    std::int64_t den_exp;  // e iff den == 2^e (the dyadic tag), else -1
  };

  /// Fast-path eligibility bound: products of two such values fit in
  /// __int128 with headroom for the a*d + c*b addition in operator+=.
  static constexpr std::int64_t kInlineMax = (std::int64_t{1} << 62) - 1;

  explicit Rational(std::unique_ptr<Big> big) : big_(std::move(big)) {}
  static Rational from_i128(__int128 numerator, __int128 denominator);
  static Rational from_bigints(BigInt numerator, BigInt denominator);
  void copy_from(const Rational& other);
  /// Shared core of += / -=: *this += sign_mult * rhs.
  void add_impl(const Rational& rhs, int sign_mult);
  /// *this = numerator / 2^den_exp, normalized; reuses the existing Big
  /// allocation (including the denominator when the exponent is unchanged).
  void assign_dyadic(BigInt numerator, std::uint64_t den_exp);
  /// Big-tier operand access without materializing copies: returns a
  /// reference to the stored BigInt, or fills `store` for inline values
  /// (cheap: the SBO keeps one-limb BigInts off the heap).
  [[nodiscard]] const BigInt& num_ref(BigInt& store) const;
  [[nodiscard]] const BigInt& den_ref(BigInt& store) const;
  /// den_exp of either tier: e iff den == 2^e, else -1.
  [[nodiscard]] std::int64_t dyadic_exponent() const noexcept;
  /// Demote a big value back to the inline tier when it fits.
  void try_demote();

  // Inline tier (valid when big_ == nullptr): num_/den_, den_ > 0, coprime.
  std::int64_t num_ = 0;
  std::int64_t den_ = 1;
  std::unique_ptr<Big> big_;
};

}  // namespace aurv::numeric
