#include "numeric/bigint.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "support/check.hpp"

namespace aurv::numeric {

namespace {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

}  // namespace

BigInt::BigInt(long long value) {
  if (value == 0) return;
  sign_ = value < 0 ? -1 : 1;
  // Avoid UB negating LLONG_MIN: go through unsigned arithmetic.
  const u64 mag = value < 0 ? 0ULL - static_cast<u64>(value) : static_cast<u64>(value);
  limbs_.push_back(mag);
}

BigInt::BigInt(unsigned long long value) {
  if (value == 0) return;
  sign_ = 1;
  limbs_.push_back(value);
}

BigInt BigInt::from_string(std::string_view text) {
  if (text.empty()) throw std::invalid_argument("BigInt::from_string: empty input");
  int sign = 1;
  std::size_t pos = 0;
  if (text[0] == '+' || text[0] == '-') {
    sign = text[0] == '-' ? -1 : 1;
    pos = 1;
  }
  if (pos == text.size()) throw std::invalid_argument("BigInt::from_string: no digits");
  BigInt result;
  const BigInt ten(10);
  for (; pos < text.size(); ++pos) {
    const char c = text[pos];
    if (c < '0' || c > '9')
      throw std::invalid_argument("BigInt::from_string: invalid digit");
    result *= ten;
    result += BigInt(c - '0');
  }
  if (sign < 0 && !result.is_zero()) result.sign_ = -1;
  return result;
}

BigInt BigInt::pow2(u64 exponent) {
  BigInt result;
  result.sign_ = 1;
  result.limbs_.assign(exponent / 64 + 1, 0);
  result.limbs_.back() = u64{1} << (exponent % 64);
  return result;
}

u64 BigInt::bit_length() const noexcept {
  if (sign_ == 0) return 0;
  const u64 top = limbs_.back();
  return (limbs_.size() - 1) * 64 + (64 - static_cast<u64>(std::countl_zero(top)));
}

bool BigInt::is_pow2() const noexcept {
  if (sign_ == 0) return false;
  if (std::popcount(limbs_.back()) != 1) return false;
  for (std::size_t i = 0; i + 1 < limbs_.size(); ++i)
    if (limbs_[i] != 0) return false;
  return true;
}

u64 BigInt::trailing_zero_bits() const {
  AURV_CHECK_MSG(sign_ != 0, "trailing_zero_bits of zero");
  std::size_t i = 0;
  while (limbs_[i] == 0) ++i;
  return i * 64 + static_cast<u64>(std::countr_zero(limbs_[i]));
}

BigInt BigInt::operator-() const {
  BigInt result = *this;
  result.sign_ = -result.sign_;
  return result;
}

BigInt BigInt::abs() const {
  BigInt result = *this;
  if (result.sign_ < 0) result.sign_ = 1;
  return result;
}

int BigInt::compare_magnitudes(const LimbVec& a, const LimbVec& b) noexcept {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (std::size_t i = a.size(); i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

void BigInt::add_magnitudes(LimbVec& acc, const LimbVec& rhs) {
  if (acc.size() < rhs.size()) acc.resize(rhs.size());
  u64 carry = 0;
  for (std::size_t i = 0; i < acc.size(); ++i) {
    const u64 addend = i < rhs.size() ? rhs[i] : 0;
    if (addend == 0 && carry == 0 && i >= rhs.size()) break;
    const u64 before = acc[i];
    acc[i] = before + addend + carry;
    carry = (acc[i] < before) || (carry && acc[i] == before) ? 1 : 0;
  }
  if (carry) acc.push_back(1);
}

void BigInt::sub_magnitudes(LimbVec& acc, const LimbVec& rhs) {
  u64 borrow = 0;
  for (std::size_t i = 0; i < acc.size(); ++i) {
    const u64 subtrahend = i < rhs.size() ? rhs[i] : 0;
    if (subtrahend == 0 && borrow == 0 && i >= rhs.size()) break;
    const u64 before = acc[i];
    acc[i] = before - subtrahend - borrow;
    borrow = (before < subtrahend) || (borrow && before == subtrahend) ? 1 : 0;
  }
}

void BigInt::rsub_magnitudes(LimbVec& acc, const LimbVec& rhs) {
  if (acc.size() < rhs.size()) acc.resize(rhs.size());
  u64 borrow = 0;
  for (std::size_t i = 0; i < acc.size(); ++i) {
    const u64 subtrahend = acc[i];
    const u64 before = i < rhs.size() ? rhs[i] : 0;
    acc[i] = before - subtrahend - borrow;
    borrow = (before < subtrahend) || (borrow && before == subtrahend) ? 1 : 0;
  }
}

void BigInt::trim() noexcept {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
  if (limbs_.empty()) sign_ = 0;
}

BigInt& BigInt::accumulate(const BigInt& rhs, int rhs_sign) {
  if (rhs_sign == 0) return *this;
  if (sign_ == 0) {
    limbs_ = rhs.limbs_;  // copy-assign reuses existing capacity
    sign_ = rhs_sign;
    return *this;
  }
  if (sign_ == rhs_sign) {
    add_magnitudes(limbs_, rhs.limbs_);
    return *this;
  }
  const int cmp = compare_magnitudes(limbs_, rhs.limbs_);
  if (cmp == 0) {
    limbs_.clear();
    sign_ = 0;
  } else if (cmp > 0) {
    sub_magnitudes(limbs_, rhs.limbs_);
    trim();
  } else {
    rsub_magnitudes(limbs_, rhs.limbs_);
    sign_ = rhs_sign;
    trim();
  }
  return *this;
}

BigInt& BigInt::operator+=(const BigInt& rhs) { return accumulate(rhs, rhs.sign_); }

BigInt& BigInt::operator-=(const BigInt& rhs) { return accumulate(rhs, -rhs.sign_); }

void BigInt::add_shifted(const BigInt& rhs, u64 shift_bits, int sign_mult) {
  const int rhs_sign = rhs.sign_ * sign_mult;
  if (rhs_sign == 0) return;
  if (shift_bits == 0) {
    accumulate(rhs, rhs_sign);
    return;
  }
  if (sign_ != 0 && sign_ != rhs_sign) {
    // Mixed signs need a magnitude comparison against the shifted operand;
    // materialize it (rare in the dyadic hot path, which adds same-sign
    // aligned numerators far more often than it cancels them).
    accumulate(rhs << shift_bits, rhs_sign);
    return;
  }
  const std::size_t limb_shift = shift_bits / 64;
  const unsigned bit_shift = static_cast<unsigned>(shift_bits % 64);
  const std::size_t shifted_limbs = rhs.limbs_.size() + limb_shift + (bit_shift != 0 ? 1 : 0);
  if (limbs_.size() < shifted_limbs) limbs_.resize(shifted_limbs);
  u64 carry = 0;
  u64 shift_in = 0;
  std::size_t pos = limb_shift;
  for (std::size_t i = 0; i < rhs.limbs_.size() + 1; ++i, ++pos) {
    const u64 cur = i < rhs.limbs_.size() ? rhs.limbs_[i] : 0;
    u64 shifted;
    if (bit_shift == 0) {
      if (i == rhs.limbs_.size()) break;  // no spill limb without a sub-limb shift
      shifted = cur;
    } else {
      shifted = (cur << bit_shift) | (shift_in >> (64 - bit_shift));
      shift_in = cur;
    }
    const u64 before = limbs_[pos];
    const u64 sum = before + shifted + carry;
    carry = (sum < before) || (carry != 0 && sum == before) ? 1 : 0;
    limbs_[pos] = sum;
  }
  while (carry != 0) {
    if (pos == limbs_.size()) {
      limbs_.push_back(1);
      carry = 0;
    } else {
      ++limbs_[pos];
      carry = limbs_[pos] == 0 ? 1 : 0;
      ++pos;
    }
  }
  sign_ = rhs_sign;  // sign_ was 0 or already equal
  trim();
}

BigInt& BigInt::operator*=(const BigInt& rhs) {
  if (sign_ == 0) return *this;
  if (rhs.sign_ == 0) {
    limbs_.clear();
    sign_ = 0;
    return *this;
  }
  if (limbs_.size() == 1 && rhs.limbs_.size() == 1) {
    // 64x64 -> 128: the dominant case once Rational's int64 tier has been
    // exceeded only just. Stays in the inline buffer, no allocation.
    const u128 product = static_cast<u128>(limbs_[0]) * rhs.limbs_[0];
    limbs_[0] = static_cast<u64>(product);
    const u64 high = static_cast<u64>(product >> 64);
    if (high != 0) limbs_.push_back(high);
    sign_ *= rhs.sign_;
    return *this;
  }
  // Schoolbook multiplication; operand sizes in this library are a handful
  // of limbs (times up to ~2^1000), so asymptotically faster algorithms
  // would be pure overhead.
  LimbVec result;
  result.resize(limbs_.size() + rhs.limbs_.size());
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    u64 carry = 0;
    const u128 a = limbs_[i];
    for (std::size_t j = 0; j < rhs.limbs_.size(); ++j) {
      const u128 cur = a * rhs.limbs_[j] + result[i + j] + carry;
      result[i + j] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    std::size_t k = i + rhs.limbs_.size();
    while (carry != 0) {
      const u128 cur = static_cast<u128>(result[k]) + carry;
      result[k] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
      ++k;
    }
  }
  limbs_ = std::move(result);
  sign_ *= rhs.sign_;
  trim();
  return *this;
}

BigInt& BigInt::operator<<=(u64 bits) {
  if (sign_ == 0 || bits == 0) return *this;
  const std::size_t limb_shift = bits / 64;
  const unsigned bit_shift = static_cast<unsigned>(bits % 64);
  const std::size_t old_size = limbs_.size();
  limbs_.resize(old_size + limb_shift + (bit_shift != 0 ? 1 : 0));
  for (std::size_t i = old_size; i-- > 0;) {
    const u64 low = limbs_[i];
    if (bit_shift == 0) {
      limbs_[i + limb_shift] = low;
    } else {
      limbs_[i + limb_shift + 1] |= low >> (64 - bit_shift);
      limbs_[i + limb_shift] = low << bit_shift;
    }
  }
  for (std::size_t i = 0; i < limb_shift; ++i) limbs_[i] = 0;
  trim();
  return *this;
}

BigInt& BigInt::operator>>=(u64 bits) {
  if (sign_ == 0 || bits == 0) return *this;
  if (bits >= bit_length()) {
    limbs_.clear();
    sign_ = 0;
    return *this;
  }
  const std::size_t limb_shift = bits / 64;
  const unsigned bit_shift = static_cast<unsigned>(bits % 64);
  const std::size_t new_size = limbs_.size() - limb_shift;
  for (std::size_t i = 0; i < new_size; ++i) {
    u64 value = limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < limbs_.size())
      value |= limbs_[i + limb_shift + 1] << (64 - bit_shift);
    limbs_[i] = value;
  }
  limbs_.resize(new_size);
  trim();
  return *this;
}

std::strong_ordering operator<=>(const BigInt& lhs, const BigInt& rhs) noexcept {
  if (lhs.sign_ != rhs.sign_)
    return lhs.sign_ < rhs.sign_ ? std::strong_ordering::less : std::strong_ordering::greater;
  const int mag = BigInt::compare_magnitudes(lhs.limbs_, rhs.limbs_);
  const int cmp = lhs.sign_ >= 0 ? mag : -mag;
  if (cmp < 0) return std::strong_ordering::less;
  if (cmp > 0) return std::strong_ordering::greater;
  return std::strong_ordering::equal;
}

BigInt::DivModResult BigInt::divmod(const BigInt& dividend, const BigInt& divisor) {
  AURV_CHECK_MSG(!divisor.is_zero(), "BigInt division by zero");
  if (dividend.is_zero()) return {};
  const int mag_cmp = compare_magnitudes(dividend.limbs_, divisor.limbs_);
  if (mag_cmp < 0) return {BigInt{}, dividend};
  // Base-2^32 schoolbook long division (Knuth D without the fine tuning;
  // operand sizes here are tiny). Work on 32-bit digits to keep the
  // quotient-digit estimation in 64-bit arithmetic.
  auto to_digits32 = [](const LimbVec& limbs) {
    std::vector<std::uint32_t> d;
    d.reserve(limbs.size() * 2);
    for (const u64 limb : limbs) {
      d.push_back(static_cast<std::uint32_t>(limb));
      d.push_back(static_cast<std::uint32_t>(limb >> 32));
    }
    while (!d.empty() && d.back() == 0) d.pop_back();
    return d;
  };
  std::vector<std::uint32_t> num = to_digits32(dividend.limbs_);
  std::vector<std::uint32_t> den = to_digits32(divisor.limbs_);

  // Knuth's normalization: scale both operands so the divisor's top digit
  // has its high bit set. Without it the trial digit q_hat can overshoot
  // the true digit by up to ~2^32 / den.back(), and the decrement-correct
  // loop below degenerates into billions of iterations; with it the
  // overshoot is at most 2. The quotient is invariant under the common
  // scaling; only the remainder needs shifting back.
  const auto normalize_shift =
      static_cast<unsigned>(std::countl_zero(den.back()));
  const auto shl_digits = [](std::vector<std::uint32_t>& d, unsigned s) {
    if (s == 0) return;
    std::uint32_t carry = 0;
    for (std::uint32_t& digit : d) {
      const std::uint32_t shifted = (digit << s) | carry;
      carry = digit >> (32 - s);
      digit = shifted;
    }
    if (carry != 0) d.push_back(carry);
  };
  const auto shr_digits = [](std::vector<std::uint32_t>& d, unsigned s) {
    if (s == 0) return;
    std::uint32_t carry = 0;
    for (std::size_t k = d.size(); k-- > 0;) {
      const std::uint32_t shifted = (d[k] >> s) | carry;
      carry = d[k] << (32 - s);
      d[k] = shifted;
    }
    while (!d.empty() && d.back() == 0) d.pop_back();
  };
  shl_digits(num, normalize_shift);
  shl_digits(den, normalize_shift);

  std::vector<std::uint32_t> quot(num.size(), 0);
  std::vector<std::uint32_t> rem;  // little-endian, running remainder
  for (std::size_t i = num.size(); i-- > 0;) {
    // rem = rem * 2^32 + num[i]
    rem.insert(rem.begin(), num[i]);
    while (!rem.empty() && rem.back() == 0) rem.pop_back();
    // Binary-search free estimation: compare magnitude and subtract with a
    // 64-bit trial quotient digit.
    std::uint64_t q = 0;
    // Fast path: compute trial from the top 64 bits.
    auto cmp_rd = [&](const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b) {
      if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
      for (std::size_t k = a.size(); k-- > 0;)
        if (a[k] != b[k]) return a[k] < b[k] ? -1 : 1;
      return 0;
    };
    if (cmp_rd(rem, den) >= 0) {
      // Estimate q in [1, 2^32). Use the top two digits of rem and top of den.
      const std::size_t n = den.size();
      std::uint64_t top_rem = rem[n - 1];
      if (rem.size() > n) top_rem |= static_cast<std::uint64_t>(rem[n]) << 32;
      std::uint64_t q_hat = top_rem / den[n - 1];
      if (q_hat >= (1ULL << 32)) q_hat = (1ULL << 32) - 1;
      // Multiply-subtract with correction loop (at most a couple of steps).
      auto mul_small = [&](const std::vector<std::uint32_t>& a, std::uint64_t m) {
        std::vector<std::uint32_t> out(a.size() + 2, 0);
        std::uint64_t carry = 0;
        for (std::size_t k = 0; k < a.size(); ++k) {
          const std::uint64_t cur = static_cast<std::uint64_t>(a[k]) * m + carry;
          out[k] = static_cast<std::uint32_t>(cur);
          carry = cur >> 32;
        }
        std::size_t k = a.size();
        while (carry) {
          out[k++] = static_cast<std::uint32_t>(carry);
          carry >>= 32;
        }
        while (!out.empty() && out.back() == 0) out.pop_back();
        return out;
      };
      auto sub_rd = [&](std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b) {
        std::uint32_t borrow = 0;
        for (std::size_t k = 0; k < a.size(); ++k) {
          const std::uint64_t sub =
              (k < b.size() ? static_cast<std::uint64_t>(b[k]) : 0) + borrow;
          const std::uint64_t before = a[k];
          if (before >= sub) {
            a[k] = static_cast<std::uint32_t>(before - sub);
            borrow = 0;
          } else {
            a[k] = static_cast<std::uint32_t>((before + (1ULL << 32)) - sub);
            borrow = 1;
          }
        }
        while (!a.empty() && a.back() == 0) a.pop_back();
      };
      std::vector<std::uint32_t> trial = mul_small(den, q_hat);
      while (cmp_rd(rem, trial) < 0) {
        --q_hat;
        trial = mul_small(den, q_hat);
      }
      sub_rd(rem, trial);
      // After correction, rem may still be >= den once (q_hat was floor-ish).
      while (cmp_rd(rem, den) >= 0) {
        ++q_hat;
        sub_rd(rem, den);
      }
      q = q_hat;
    }
    quot[i] = static_cast<std::uint32_t>(q);
  }

  auto from_digits32 = [](const std::vector<std::uint32_t>& d) {
    BigInt out;
    out.limbs_.assign((d.size() + 1) / 2, 0);
    for (std::size_t i = 0; i < d.size(); ++i) {
      out.limbs_[i / 2] |= static_cast<u64>(d[i]) << (32 * (i % 2));
    }
    out.sign_ = 1;
    out.trim();
    return out;
  };

  shr_digits(rem, normalize_shift);  // undo the normalization scaling

  DivModResult result;
  result.quotient = from_digits32(quot);
  result.remainder = from_digits32(rem);
  if (!result.quotient.is_zero()) result.quotient.sign_ = dividend.sign_ * divisor.sign_;
  if (!result.remainder.is_zero()) result.remainder.sign_ = dividend.sign_;
  return result;
}

BigInt operator/(const BigInt& lhs, const BigInt& rhs) {
  return BigInt::divmod(lhs, rhs).quotient;
}

BigInt operator%(const BigInt& lhs, const BigInt& rhs) {
  return BigInt::divmod(lhs, rhs).remainder;
}

BigInt BigInt::gcd(BigInt a, BigInt b) {
  a.sign_ = a.is_zero() ? 0 : 1;
  b.sign_ = b.is_zero() ? 0 : 1;
  if (a.is_zero()) return b;
  if (b.is_zero()) return a;
  // Binary (Stein) GCD: only shifts and subtractions; avoids divmod in the
  // Rational normalization hot path.
  const u64 az = a.trailing_zero_bits();
  const u64 bz = b.trailing_zero_bits();
  const u64 shift = std::min(az, bz);
  a >>= az;
  b >>= bz;
  while (true) {
    if (a == b) break;
    if (a > b) {
      a -= b;
      a >>= a.trailing_zero_bits();
    } else {
      b -= a;
      b >>= b.trailing_zero_bits();
    }
  }
  return a << shift;
}

double BigInt::to_double() const noexcept {
  if (sign_ == 0) return 0.0;
  const u64 bits = bit_length();
  if (bits <= 64) {
    const double mag = static_cast<double>(limbs_[0]);
    return sign_ < 0 ? -mag : mag;
  }
  if (bits > 1024) return sign_ < 0 ? -std::numeric_limits<double>::infinity()
                                    : std::numeric_limits<double>::infinity();
  // Take the top 64 bits and scale.
  const u64 drop = bits - 64;
  BigInt top = *this;
  top >>= drop;
  const double mag = std::ldexp(static_cast<double>(top.limbs_[0]), static_cast<int>(drop));
  return sign_ < 0 ? -mag : mag;
}

std::optional<unsigned __int128> BigInt::magnitude_shifted(u64 shift) const noexcept {
  const u64 bits = bit_length();
  if (bits <= shift) return static_cast<u128>(0);
  if (bits - shift > 128) return std::nullopt;
  const std::size_t limb_skip = shift / 64;
  const unsigned bit_skip = static_cast<unsigned>(shift % 64);
  u128 out = 0;
  // At most three limbs contribute to a 128-bit window at any bit offset.
  for (std::size_t i = 0; i < 3; ++i) {
    const std::size_t limb = limb_skip + i;
    if (limb >= limbs_.size()) break;
    const u128 chunk = static_cast<u128>(limbs_[limb]);
    if (bit_skip == 0) {
      if (i == 2) break;  // window full: limbs 0 and 1 already cover 128 bits
      out |= chunk << (64 * i);
    } else if (i == 0) {
      out |= chunk >> bit_skip;
    } else {
      out |= chunk << (64 * i - bit_skip);
    }
  }
  return out;
}

bool BigInt::fits_int64() const noexcept {
  if (sign_ == 0) return true;
  if (limbs_.size() > 1) return false;
  const u64 mag = limbs_[0];
  return sign_ > 0 ? mag <= static_cast<u64>(std::numeric_limits<std::int64_t>::max())
                   : mag <= static_cast<u64>(std::numeric_limits<std::int64_t>::max()) + 1;
}

std::int64_t BigInt::to_int64() const {
  if (!fits_int64()) throw std::overflow_error("BigInt::to_int64: out of range");
  if (sign_ == 0) return 0;
  const u64 mag = limbs_[0];
  if (sign_ > 0) return static_cast<std::int64_t>(mag);
  return static_cast<std::int64_t>(0ULL - mag);
}

std::string BigInt::to_string() const {
  if (sign_ == 0) return "0";
  // Repeated division by 10^19 (the largest power of ten in a u64).
  constexpr u64 kChunk = 10'000'000'000'000'000'000ULL;
  BigInt value = abs();
  std::vector<u64> chunks;
  const BigInt chunk_divisor(kChunk);
  while (!value.is_zero()) {
    const DivModResult dm = divmod(value, chunk_divisor);
    chunks.push_back(dm.remainder.is_zero() ? 0 : dm.remainder.limbs_[0]);
    value = dm.quotient;
  }
  std::string out;
  if (sign_ < 0) out.push_back('-');
  out += std::to_string(chunks.back());
  for (std::size_t i = chunks.size() - 1; i-- > 0;) {
    std::string part = std::to_string(chunks[i]);
    out.append(19 - part.size(), '0');
    out += part;
  }
  return out;
}

}  // namespace aurv::numeric
