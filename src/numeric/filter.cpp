#include "numeric/filter.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdlib>
#include <string_view>
#include <utility>

#include "support/telemetry.hpp"

namespace aurv::numeric {

namespace {

using i128 = __int128;
using u128 = unsigned __int128;

u128 magnitude(i128 value) {
  return value < 0 ? -static_cast<u128>(value) : static_cast<u128>(value);
}

int bit_length_u128(u128 value) {
  const auto high = static_cast<std::uint64_t>(value >> 64);
  if (high != 0) return 128 - std::countl_zero(high);
  return 64 - std::countl_zero(static_cast<std::uint64_t>(value));
}

int trailing_zeros_u128(u128 value) {
  const auto low = static_cast<std::uint64_t>(value);
  if (low != 0) return std::countr_zero(low);
  return 64 + std::countr_zero(static_cast<std::uint64_t>(value >> 64));
}

std::strong_ordering compare_u128(u128 a, u128 b) {
  if (a < b) return std::strong_ordering::less;
  if (a > b) return std::strong_ordering::greater;
  return std::strong_ordering::equal;
}

bool exact_only_from_env() {
  const char* raw = std::getenv("AURV_EXACT_ONLY");
  return raw != nullptr && *raw != '\0' && std::string_view(raw) != "0";
}

std::atomic<bool> g_exact_only{exact_only_from_env()};

}  // namespace

// ------------------------------------------------------------- tier stats --

FilterStats& filter_stats() noexcept {
  thread_local FilterStats stats;
  return stats;
}

void flush_filter_stats() {
  static support::telemetry::Counter& fast_hits =
      support::telemetry::registry().counter("filter.fast_hits");
  static support::telemetry::Counter& limb2_hits =
      support::telemetry::registry().counter("filter.limb2_hits");
  static support::telemetry::Counter& exact_escapes =
      support::telemetry::registry().counter("filter.exact_escapes");
  FilterStats& stats = filter_stats();
  if (stats.fast_hits != 0) fast_hits.add(stats.fast_hits);
  if (stats.limb2_hits != 0) limb2_hits.add(stats.limb2_hits);
  if (stats.exact_escapes != 0) exact_escapes.add(stats.exact_escapes);
  stats = FilterStats{};
}

bool filter_exact_only() noexcept { return g_exact_only.load(std::memory_order_relaxed); }

void set_filter_exact_only(bool exact_only) noexcept {
  g_exact_only.store(exact_only, std::memory_order_relaxed);
}

// -------------------------------------------------------------- FInterval --

FInterval FInterval::enclose(const Rational& value) {
  const double nearest = value.to_double();
  if (!std::isfinite(nearest)) {
    // Beyond double range. The conversion's double-rounding can tip to
    // infinity marginally early, so back the finite endpoint off two ulps.
    using filter_detail::next_down;
    using filter_detail::next_up;
    constexpr double kMax = std::numeric_limits<double>::max();
    if (nearest > 0) return {next_down(next_down(kMax)), filter_detail::kInf};
    return {-filter_detail::kInf, next_up(next_up(-kMax))};
  }
  // Rational::to_double() is within 2 ulps of the true value (truncate-
  // then-round double rounding), so two outward nextafters are a sound
  // enclosure. A point is only claimed when the round-trip proves it.
  i128 mantissa = 0;
  std::int64_t shift = 0;
  if (value.dyadic128_view(mantissa, shift)) {
    Dyadic128 dyadic{mantissa, shift};
    dyadic.normalize();
    const Dyadic128 back = Dyadic128::from_double(nearest);
    if (Dyadic128::compare(dyadic, back) == std::strong_ordering::equal) {
      return point(nearest);
    }
  }
  using filter_detail::next_down;
  using filter_detail::next_up;
  return {next_down(next_down(nearest)), next_up(next_up(nearest))};
}

std::optional<SignClass> certified_sign(const FInterval& iv) noexcept {
  if (filter_exact_only()) return std::nullopt;
  if (iv.lo > 0) {
    ++filter_stats().fast_hits;
    return SignClass::kPositive;
  }
  if (iv.hi < 0) {
    ++filter_stats().fast_hits;
    return SignClass::kNegative;
  }
  if (iv.lo == 0 && iv.hi == 0) {
    ++filter_stats().fast_hits;
    return SignClass::kZero;
  }
  return std::nullopt;
}

// -------------------------------------------------------------- Dyadic128 --

Dyadic128 Dyadic128::from_double(double value) {
  if (value == 0.0) return {};
  int exponent = 0;
  const double mant = std::frexp(value, &exponent);  // value = mant * 2^exponent
  const auto scaled = static_cast<std::int64_t>(std::ldexp(mant, 53));
  Dyadic128 result{static_cast<i128>(scaled), static_cast<std::int64_t>(exponent) - 53};
  result.normalize();
  return result;
}

void Dyadic128::normalize() {
  if (mantissa == 0) {
    shift = 0;
    return;
  }
  const int zeros = trailing_zeros_u128(magnitude(mantissa));
  if (zeros > 0) {
    mantissa >>= zeros;  // exact: divisible (C++20 arithmetic shift)
    shift += zeros;
  }
}

std::optional<Dyadic128> Dyadic128::sum(const Dyadic128& a, const Dyadic128& b) {
  if (a.mantissa == 0) return b;
  if (b.mantissa == 0) return a;
  const Dyadic128* low = &a;
  const Dyadic128* high = &b;
  if (low->shift > high->shift) std::swap(low, high);
  const std::int64_t delta = high->shift - low->shift;
  if (delta > 127) return std::nullopt;
  if (bit_length_u128(magnitude(high->mantissa)) + delta > 127) return std::nullopt;
  const i128 aligned = high->mantissa << delta;  // exact: headroom checked above
  i128 total = 0;
  if (__builtin_add_overflow(aligned, low->mantissa, &total)) return std::nullopt;
  Dyadic128 result{total, low->shift};
  result.normalize();
  return result;
}

std::optional<Dyadic128> Dyadic128::difference(const Dyadic128& a, const Dyadic128& b) {
  // Negating a mantissa of exactly -2^127 would overflow; normalized values
  // never carry one (it normalizes to -1), but guard the raw struct anyway.
  if (magnitude(b.mantissa) > (static_cast<u128>(1) << 127) - 1) return std::nullopt;
  return sum(a, Dyadic128{-b.mantissa, b.shift});
}

std::optional<Dyadic128> Dyadic128::product(const Dyadic128& a, const Dyadic128& b) {
  if (a.mantissa == 0 || b.mantissa == 0) return Dyadic128{};
  i128 total = 0;
  if (__builtin_mul_overflow(a.mantissa, b.mantissa, &total)) return std::nullopt;
  if (magnitude(total) > (static_cast<u128>(1) << 127) - 1) return std::nullopt;
  Dyadic128 result{total, a.shift + b.shift};
  result.normalize();
  return result;
}

std::strong_ordering Dyadic128::compare(const Dyadic128& a, const Dyadic128& b) {
  const int sign_a = a.sign();
  const int sign_b = b.sign();
  if (sign_a != sign_b) return sign_a <=> sign_b;
  if (sign_a == 0) return std::strong_ordering::equal;
  // Same nonzero sign: leading-bit positions first, aligned mantissas on a
  // tie (when positions agree the shift gap equals the bit-length gap, so
  // the left shift below cannot overflow 128 bits).
  const u128 mag_a = magnitude(a.mantissa);
  const u128 mag_b = magnitude(b.mantissa);
  const std::int64_t lead_a = bit_length_u128(mag_a) + a.shift;
  const std::int64_t lead_b = bit_length_u128(mag_b) + b.shift;
  std::strong_ordering mag_order = std::strong_ordering::equal;
  if (lead_a != lead_b) {
    mag_order = lead_a <=> lead_b;
  } else if (a.shift >= b.shift) {
    mag_order = compare_u128(mag_a << (a.shift - b.shift), mag_b);
  } else {
    mag_order = compare_u128(mag_a, mag_b << (b.shift - a.shift));
  }
  if (sign_a > 0) return mag_order;
  return 0 <=> mag_order;
}

Rational Dyadic128::to_rational() const { return Rational::from_dyadic128(mantissa, shift); }

double Dyadic128::to_double() const {
  if (mantissa == 0) return 0.0;
  const u128 mag0 = magnitude(mantissa);
  if (mag0 < (static_cast<u128>(1) << 53)) {
    // <= 53 significant bits: every tier of the mirror below performs a
    // single correctly-rounded operation on the true value (the divisions
    // are by powers of two with an exact numerator), and ldexp of the exact
    // mantissa is the same correctly-rounded result — bit-identical, far
    // cheaper. Saturate the exponent before narrowing: ldexp flushes to
    // 0 / inf well inside +/-5000 exactly as the mirror's tiers do.
    const auto exponent = static_cast<int>(std::clamp<std::int64_t>(shift, -5000, 5000));
    const double result = std::ldexp(static_cast<double>(static_cast<std::uint64_t>(mag0)), exponent);
    return mantissa < 0 ? -result : result;
  }
  // Replay Rational::to_double() bit for bit. First put the value in
  // Rational's canonical dyadic form: strip trailing mantissa zeros into
  // the denominator exponent (numerator odd whenever a denominator
  // remains), exactly what Rational::assign_dyadic stores.
  u128 mag = mag0;
  std::int64_t scale = shift;
  if (scale < 0) {
    const int zeros = trailing_zeros_u128(mag);
    const std::int64_t take = std::min<std::int64_t>(zeros, -scale);
    if (take > 0) {
      mag >>= take;
      scale += take;
    }
  }
  const bool negative = mantissa < 0;
  const std::int64_t mant_bits = bit_length_u128(mag);
  if (scale >= 0) {
    // Integer: numerator mag << scale, denominator 1.
    const std::int64_t num_bits = mant_bits + scale;
    if (num_bits <= 62) {
      // Inline tier: static_cast<double>(num_) / static_cast<double>(den_).
      const auto num = static_cast<std::int64_t>(mag << scale);
      return static_cast<double>(negative ? -num : num) / static_cast<double>(std::int64_t{1});
    }
    // Big tier: numerator truncated to its top 62 bits, then ldexp back.
    const std::int64_t drop = num_bits - 62;
    const u128 top = drop >= scale ? (mag >> (drop - scale)) : (mag << (scale - drop));
    const double quotient = static_cast<double>(static_cast<std::uint64_t>(top)) /
                            static_cast<double>(std::uint64_t{1});
    const double result = std::ldexp(quotient, static_cast<int>(drop));
    return negative ? -result : result;
  }
  const std::int64_t den_exp = -scale;  // denominator 2^den_exp, den_exp >= 1
  if (mant_bits <= 62 && den_exp <= 61) {
    // Inline tier.
    const auto num = static_cast<std::int64_t>(mag);
    return static_cast<double>(negative ? -num : num) /
           static_cast<double>(std::int64_t{1} << den_exp);
  }
  // Big tier: both operands aligned down to <= 62 significant bits, the
  // division done there, the binary exponent restored with ldexp.
  const std::int64_t den_bits = den_exp + 1;
  std::int64_t exponent = 0;
  u128 num = mag;
  if (mant_bits > 62) {
    num >>= (mant_bits - 62);
    exponent += mant_bits - 62;
  }
  std::int64_t kept_den_exp = den_exp;
  if (den_bits > 62) {
    kept_den_exp -= den_bits - 62;  // always lands on 61
    exponent -= den_bits - 62;
  }
  const double quotient = static_cast<double>(static_cast<std::uint64_t>(num)) /
                          static_cast<double>(std::uint64_t{1} << kept_den_exp);
  const double result = std::ldexp(quotient, static_cast<int>(exponent));
  return negative ? -result : result;
}

// --------------------------------------------------------------- Filtered --

Filtered::Filtered(double value) {
  if (filter_exact_only()) {
    fast_ = false;
    rat_ = Rational::from_double(value);
    iv_ = FInterval::point(value);
    return;
  }
  dy_ = Dyadic128::from_double(value);
  iv_ = FInterval::point(value);
}

Filtered::Filtered(const Rational& value) {
  if (!filter_exact_only()) {
    i128 mantissa = 0;
    std::int64_t scale = 0;
    if (value.dyadic128_view(mantissa, scale)) {
      dy_ = Dyadic128{mantissa, scale};
      dy_.normalize();
      rebuild_interval_from_dyadic();
      return;
    }
  }
  fast_ = false;
  rat_ = value;
  rebuild_interval_from_rational();
}

Filtered::Filtered(Rational&& value) {
  if (!filter_exact_only()) {
    i128 mantissa = 0;
    std::int64_t scale = 0;
    if (value.dyadic128_view(mantissa, scale)) {
      dy_ = Dyadic128{mantissa, scale};
      dy_.normalize();
      rebuild_interval_from_dyadic();
      return;
    }
  }
  fast_ = false;
  rat_ = std::move(value);
  rebuild_interval_from_rational();
}

Rational Filtered::to_rational() const { return fast_ ? dy_.to_rational() : rat_; }

int Filtered::sign() const {
  if (const auto certified = certified_sign(iv_)) {
    switch (*certified) {
      case SignClass::kNegative: return -1;
      case SignClass::kZero: return 0;
      case SignClass::kPositive: return 1;
    }
  }
  if (!filter_exact_only() && fast_) {
    ++filter_stats().limb2_hits;
    return dy_.sign();
  }
  ++filter_stats().exact_escapes;
  return fast_ ? dy_.sign() : rat_.sign();
}

std::strong_ordering Filtered::exact_compare(const Filtered& lhs, const Filtered& rhs) {
  ++filter_stats().exact_escapes;
  if (lhs.fast_ && rhs.fast_) return Dyadic128::compare(lhs.dy_, rhs.dy_);
  if (lhs.fast_) return lhs.dy_.to_rational() <=> rhs.rat_;
  if (rhs.fast_) return lhs.rat_ <=> rhs.dy_.to_rational();
  return lhs.rat_ <=> rhs.rat_;
}

void Filtered::escape() {
  if (!fast_) return;
  rat_ = dy_.to_rational();
  fast_ = false;
}

void Filtered::accumulate_escaped(const Filtered& rhs, int sign_mult) {
  escape();
  if (rhs.fast_) {
    const Rational other = rhs.dy_.to_rational();
    if (sign_mult > 0) {
      rat_ += other;
    } else {
      rat_ -= other;
    }
  } else if (sign_mult > 0) {
    rat_ += rhs.rat_;
  } else {
    rat_ -= rhs.rat_;
  }
  rebuild_interval_from_rational();
}

void Filtered::multiply_escaped(const Filtered& rhs) {
  escape();
  if (rhs.fast_) {
    rat_ *= rhs.dy_.to_rational();
  } else {
    rat_ *= rhs.rat_;
  }
  rebuild_interval_from_rational();
}

void Filtered::rebuild_interval_from_dyadic() {
  // dy_ is normalized everywhere this runs (ctors and the arithmetic ops
  // normalize first), so the mantissa is odd or zero and bit_length is the
  // exact count of significant bits.
  const u128 mag = magnitude(dy_.mantissa);
  const int bits = bit_length_u128(mag);
  if (bits <= 53 && dy_.shift >= -1021 && dy_.shift <= 970) {
    // Hot case: <= 53 significant bits with the exponent inside the normal
    // range is exactly representable, so the enclosure is a point and no
    // round-trip proof is needed. The shift window is conservative: mag >= 1
    // keeps the value >= 2^-1021 (normal), and < 2^53 keeps it
    // < 2^(shift + 53) <= 2^1023 (no overflow).
    const double exact =
        std::ldexp(static_cast<double>(static_cast<std::uint64_t>(mag)),
                   static_cast<int>(dy_.shift));
    iv_ = FInterval::point(dy_.mantissa < 0 ? -exact : exact);
    return;
  }
  using filter_detail::next_down;
  using filter_detail::next_up;
  const double nearest = dy_.to_double();
  if (!std::isfinite(nearest)) {
    constexpr double kMax = std::numeric_limits<double>::max();
    iv_ = nearest > 0 ? FInterval{next_down(next_down(kMax)), filter_detail::kInf}
                      : FInterval{-filter_detail::kInf, next_up(next_up(-kMax))};
    return;
  }
  if (bits > 53) {
    // An odd mantissa wider than a double's 53-bit significand can never be
    // exactly representable: widen without the round-trip proof.
    iv_ = {next_down(next_down(nearest)), next_up(next_up(nearest))};
    return;
  }
  // <= 53 bits but an extreme exponent (subnormal range): the round-trip
  // decides representability.
  const Dyadic128 back = Dyadic128::from_double(nearest);
  if (Dyadic128::compare(dy_, back) == std::strong_ordering::equal) {
    iv_ = FInterval::point(nearest);
    return;
  }
  iv_ = {next_down(next_down(nearest)), next_up(next_up(nearest))};
}

void Filtered::rebuild_interval_from_rational() {
  // Escaped values are never exactly representable doubles: the value
  // either is non-dyadic or needs > 127 mantissa bits, both of which rule
  // out the 53-bit double mantissa. So the enclosure is always widened.
  const double nearest = rat_.to_double();
  using filter_detail::next_down;
  using filter_detail::next_up;
  if (!std::isfinite(nearest)) {
    constexpr double kMax = std::numeric_limits<double>::max();
    iv_ = nearest > 0 ? FInterval{next_down(next_down(kMax)), filter_detail::kInf}
                      : FInterval{-filter_detail::kInf, next_up(next_up(-kMax))};
    return;
  }
  iv_ = {next_down(next_down(nearest)), next_up(next_up(nearest))};
}

}  // namespace aurv::numeric
