// Filtered numeric kernel: filter-then-certify comparisons for exact time.
//
// The engine's event arithmetic is exact-rational end to end, yet almost
// every comparison it makes (which window ends first? is the contact before
// the horizon?) is decidable in plain double arithmetic with a little care.
// This header provides the three-tier ladder that exploits that without
// ever changing an answer:
//
//   1. FInterval — a double interval with outward-rounded endpoints
//      (Dekker/Knuth error terms pick the rounding direction; no FPU
//      rounding-mode changes). If two intervals do not overlap, the
//      comparison is *certified* and costs a couple of flops.
//   2. Dyadic128 — a fixed-width two-limb dyadic value m * 2^s with an
//      __int128 mantissa. Exact add/multiply/compare as long as mantissas
//      fit 127 bits; overflow is detected and escapes. This tier decides
//      the near-ties the interval cannot.
//   3. Rational — the existing exact tier, the final authority.
//
// Soundness contract: a tier may only answer when its answer provably
// equals the exact one (non-overlapping intervals, non-overflowing exact
// integer arithmetic). Escapes change cost, never results — golden
// artifacts stay bit-identical whichever tier decided each comparison,
// and `AURV_EXACT_ONLY=1` (or set_filter_exact_only) forces every decision
// to the Rational tier to prove it.
//
// Bit-exactness: Filtered::to_double() must equal Rational::to_double()
// of the same value *bitwise*, because artifact bytes are printed from
// those doubles. Dyadic128::to_double() therefore replays Rational's
// rounding sequence instruction for instruction (see filter.cpp) rather
// than computing a correctly-rounded conversion.
//
// Tier traffic is counted per thread (filter_stats) and published to the
// telemetry registry as filter.fast_hits / filter.limb2_hits /
// filter.exact_escapes by flush_filter_stats(), which the engines call at
// their deterministic finish points. See docs/NUMERICS.md for the full
// contract and a worked escalation example.
#pragma once

#include <algorithm>
#include <cmath>
#include <compare>
#include <cstdint>
#include <limits>
#include <optional>

#include "numeric/rational.hpp"

namespace aurv::numeric {

// ------------------------------------------------------------------------
// Per-thread tier-traffic counters. Plain integers on purpose: bumping one
// costs a register increment, not an atomic; flush_filter_stats() moves
// them into the process-wide telemetry registry at deterministic points.
struct FilterStats {
  std::uint64_t fast_hits = 0;      // interval tier decided
  std::uint64_t limb2_hits = 0;     // two-limb dyadic tier decided
  std::uint64_t exact_escapes = 0;  // fell through to Rational
};

[[nodiscard]] FilterStats& filter_stats() noexcept;

/// Adds this thread's counts to the telemetry counters filter.* and zeroes
/// them. Call sites are the engines' finish paths, so counter totals stay
/// thread-count-invariant like every other telemetry series.
void flush_filter_stats();

/// When true, every decision goes straight to the Rational tier: the
/// determinism proof mode behind the AURV_EXACT_ONLY=1 environment toggle
/// (read once at startup). Artifacts must be byte-identical either way.
[[nodiscard]] bool filter_exact_only() noexcept;
void set_filter_exact_only(bool exact_only) noexcept;

// ------------------------------------------------------------------------
// Directed-rounding scalar helpers. TwoSum/TwoProd produce the exact
// residual of the rounded operation; its sign tells which endpoint needs
// an outward nextafter. Results are sound for every input, including
// overflow (clamped half-lines) and underflow (widened past the residual's
// blind spot).
namespace filter_detail {

inline constexpr double kInf = std::numeric_limits<double>::infinity();

inline double next_down(double value) { return std::nextafter(value, -kInf); }
inline double next_up(double value) { return std::nextafter(value, kInf); }

inline double add_down(double a, double b) {
  const double s = a + b;
  if (!std::isfinite(s)) {
    if (std::isinf(a) || std::isinf(b)) return s;
    return s > 0 ? std::numeric_limits<double>::max() : -kInf;
  }
  const double bv = s - a;
  const double err = (a - (s - bv)) + (b - bv);
  return err < 0 ? next_down(s) : s;
}

inline double add_up(double a, double b) {
  const double s = a + b;
  if (!std::isfinite(s)) {
    if (std::isinf(a) || std::isinf(b)) return s;
    return s > 0 ? kInf : -std::numeric_limits<double>::max();
  }
  const double bv = s - a;
  const double err = (a - (s - bv)) + (b - bv);
  return err > 0 ? next_up(s) : s;
}

inline double sub_down(double a, double b) { return add_down(a, -b); }
inline double sub_up(double a, double b) { return add_up(a, -b); }

inline double mul_down(double a, double b) {
  const double p = a * b;
  if (std::isnan(p)) return -kInf;  // 0 * inf: no finite information
  if (!std::isfinite(p)) {
    if (std::isinf(a) || std::isinf(b)) return p;
    return p > 0 ? std::numeric_limits<double>::max() : -kInf;
  }
  const double err = std::fma(a, b, -p);
  if (err < 0) return next_down(p);
  if (err == 0 && p != 0 && std::fabs(p) < std::numeric_limits<double>::min()) {
    return next_down(p);  // subnormal residual underflow: direction unknown
  }
  if (p == 0 && a != 0 && b != 0) return -std::numeric_limits<double>::denorm_min();
  return p;
}

inline double mul_up(double a, double b) {
  const double p = a * b;
  if (std::isnan(p)) return kInf;
  if (!std::isfinite(p)) {
    if (std::isinf(a) || std::isinf(b)) return p;
    return p > 0 ? kInf : -std::numeric_limits<double>::max();
  }
  const double err = std::fma(a, b, -p);
  if (err > 0) return next_up(p);
  if (err == 0 && p != 0 && std::fabs(p) < std::numeric_limits<double>::min()) {
    return next_up(p);
  }
  if (p == 0 && a != 0 && b != 0) return std::numeric_limits<double>::denorm_min();
  return p;
}

}  // namespace filter_detail

// ------------------------------------------------------------------------
// Tier 1: outward-rounded double interval. Invariant: lo <= hi, neither is
// NaN; lo == hi means the interval is an *exact point* (the real value is
// exactly this double) — that is what licenses certified equality.
struct FInterval {
  double lo = 0.0;
  double hi = 0.0;

  static FInterval point(double value) { return {value, value}; }
  static FInterval whole() { return {-filter_detail::kInf, filter_detail::kInf}; }

  /// Sound enclosure of an exact rational value; a point iff the value is
  /// exactly representable (see filter.cpp for the proof obligations).
  static FInterval enclose(const Rational& value);

  /// Tight enclosure of a * b for two exact doubles: one multiply plus one
  /// fma (TwoProd) instead of the eight directed products a general
  /// interval multiply pays. Endpoint-for-endpoint identical to
  /// {mul_down(a, b), mul_up(a, b)} — the special cases below mirror those
  /// helpers' clauses one by one.
  static FInterval product(double a, double b) {
    using filter_detail::kInf;
    const double p = a * b;
    if (std::isnan(p)) return {-kInf, kInf};  // 0 * inf: no finite information
    if (!std::isfinite(p)) {
      if (std::isinf(a) || std::isinf(b)) return {p, p};
      return p > 0 ? FInterval{std::numeric_limits<double>::max(), kInf}
                   : FInterval{-kInf, -std::numeric_limits<double>::max()};
    }
    const double err = std::fma(a, b, -p);
    if (err < 0) return {filter_detail::next_down(p), p};
    if (err > 0) return {p, filter_detail::next_up(p)};
    if (p != 0 && std::fabs(p) < std::numeric_limits<double>::min()) {
      // Subnormal residual underflow: the rounding direction is invisible.
      return {filter_detail::next_down(p), filter_detail::next_up(p)};
    }
    if (p == 0 && a != 0 && b != 0) {
      return {-std::numeric_limits<double>::denorm_min(),
              std::numeric_limits<double>::denorm_min()};
    }
    return {p, p};
  }

  [[nodiscard]] bool is_point() const { return lo == hi; }

  friend FInterval operator+(const FInterval& a, const FInterval& b) {
    return {filter_detail::add_down(a.lo, b.lo), filter_detail::add_up(a.hi, b.hi)};
  }
  friend FInterval operator-(const FInterval& a, const FInterval& b) {
    return {filter_detail::sub_down(a.lo, b.hi), filter_detail::sub_up(a.hi, b.lo)};
  }
  friend FInterval operator-(const FInterval& a) { return {-a.hi, -a.lo}; }
  friend FInterval operator*(const FInterval& a, const FInterval& b) {
    using filter_detail::mul_down;
    using filter_detail::mul_up;
    const double lo = std::min(std::min(mul_down(a.lo, b.lo), mul_down(a.lo, b.hi)),
                               std::min(mul_down(a.hi, b.lo), mul_down(a.hi, b.hi)));
    const double hi = std::max(std::max(mul_up(a.lo, b.lo), mul_up(a.lo, b.hi)),
                               std::max(mul_up(a.hi, b.lo), mul_up(a.hi, b.hi)));
    return {lo, hi};
  }

  [[nodiscard]] FInterval abs() const {
    if (lo >= 0) return *this;
    if (hi <= 0) return -*this;
    return {0.0, std::max(-lo, hi)};
  }

  /// Outward widening by an absolute margin — the containment slop for
  /// enclosures of transcendental sub-expressions (hypot/cos/sin) whose
  /// final-ulp direction the directed-rounding helpers cannot see.
  [[nodiscard]] FInterval widened(double margin) const {
    return {filter_detail::sub_down(lo, margin), filter_detail::add_up(hi, margin)};
  }

  friend FInterval min(const FInterval& a, const FInterval& b) {
    return {std::min(a.lo, b.lo), std::min(a.hi, b.hi)};
  }
  friend FInterval max(const FInterval& a, const FInterval& b) {
    return {std::max(a.lo, b.lo), std::max(a.hi, b.hi)};
  }
  friend FInterval hull(const FInterval& a, const FInterval& b) {
    return {std::min(a.lo, b.lo), std::max(a.hi, b.hi)};
  }
};

enum class SignClass { kNegative, kZero, kPositive };

/// Interval-tier sign certification: an answer is returned only when it
/// provably equals the exact sign. Inconclusive (overlapping zero without
/// being an exact zero point) and exact-only mode return nullopt; the
/// caller escalates. Counts one fast_hit on success, nothing on a miss —
/// the escalation path owns the miss accounting.
[[nodiscard]] std::optional<SignClass> certified_sign(const FInterval& iv) noexcept;

// ------------------------------------------------------------------------
// Tier 2: fixed-width two-limb dyadic value, mantissa * 2^shift with an
// __int128 mantissa (SNIPPETS.md §2 idiom). All operations either return
// the exact result or report overflow; they never round.
struct Dyadic128 {
  __int128 mantissa = 0;
  std::int64_t shift = 0;  // zero is canonically {0, 0}

  /// Exact decomposition of a finite double (every finite double is some
  /// m * 2^s with |m| < 2^53).
  static Dyadic128 from_double(double value);

  /// Strips trailing zero bits of the mantissa into the shift, restoring
  /// maximal headroom after arithmetic.
  void normalize();

  [[nodiscard]] int sign() const { return mantissa == 0 ? 0 : (mantissa < 0 ? -1 : 1); }

  /// Exact sum/difference/product, or nullopt when the result needs more
  /// than 127 mantissa bits (the escape signal; never a rounded value).
  static std::optional<Dyadic128> sum(const Dyadic128& a, const Dyadic128& b);
  static std::optional<Dyadic128> difference(const Dyadic128& a, const Dyadic128& b);
  static std::optional<Dyadic128> product(const Dyadic128& a, const Dyadic128& b);

  /// Exact value comparison (leading-bit positions first, aligned
  /// mantissas on a tie — the same trick as Rational's dyadic compare).
  static std::strong_ordering compare(const Dyadic128& a, const Dyadic128& b);

  [[nodiscard]] Rational to_rational() const;

  /// Bit-identical to to_rational().to_double(): replays Rational's exact
  /// rounding sequence so artifacts do not depend on which tier held the
  /// value. Differentially enforced by tests/numeric_filter_test.cpp.
  [[nodiscard]] double to_double() const;
};

// ------------------------------------------------------------------------
// The filtered exact value: the engine's time type. Semantically identical
// to Rational — every observable (to_double, to_rational, comparisons,
// sign) equals the exact answer — but carried in the cheapest tier that
// can represent it exactly, with a sound interval enclosure alongside for
// certified comparisons.
class Filtered {
 public:
  Filtered() = default;  // exact zero, dyadic tier
  explicit Filtered(int value) : Filtered(static_cast<double>(value)) {}
  explicit Filtered(const Rational& value);
  explicit Filtered(Rational&& value);

 private:
  explicit Filtered(double value);  // exact; internal (from_double is the API)

 public:
  /// Exact conversion of a finite double.
  static Filtered from_double(double value) { return Filtered(value); }

  /// The exact value as Rational.
  [[nodiscard]] Rational to_rational() const;

  /// Bit-identical to to_rational().to_double() by the Dyadic128 mirror.
  [[nodiscard]] double to_double() const {
    return fast_ ? dy_.to_double() : rat_.to_double();
  }

  [[nodiscard]] const FInterval& interval() const noexcept { return iv_; }
  /// Observability: which tier holds the value (never affects semantics).
  [[nodiscard]] bool in_dyadic_tier() const noexcept { return fast_; }

  /// Exact sign via the ladder (counts one tier stat per call).
  [[nodiscard]] int sign() const;

  Filtered& operator+=(const Filtered& rhs) {
    if (fast_ && rhs.fast_) {
      if (auto result = Dyadic128::sum(dy_, rhs.dy_)) {
        dy_ = *result;
        rebuild_interval_from_dyadic();
        return *this;
      }
    }
    accumulate_escaped(rhs, +1);
    return *this;
  }

  Filtered& operator-=(const Filtered& rhs) {
    if (fast_ && rhs.fast_) {
      if (auto result = Dyadic128::difference(dy_, rhs.dy_)) {
        dy_ = *result;
        rebuild_interval_from_dyadic();
        return *this;
      }
    }
    accumulate_escaped(rhs, -1);
    return *this;
  }

  Filtered& operator*=(const Filtered& rhs) {
    if (fast_ && rhs.fast_) {
      if (auto result = Dyadic128::product(dy_, rhs.dy_)) {
        dy_ = *result;
        rebuild_interval_from_dyadic();
        return *this;
      }
    }
    multiply_escaped(rhs);
    return *this;
  }

  friend Filtered operator+(Filtered lhs, const Filtered& rhs) { return lhs += rhs; }
  friend Filtered operator-(Filtered lhs, const Filtered& rhs) { return lhs -= rhs; }
  friend Filtered operator*(Filtered lhs, const Filtered& rhs) { return lhs *= rhs; }

  /// The certify-or-escalate comparison ladder. Exactly one of
  /// fast_hits / limb2_hits / exact_escapes is incremented per call, and
  /// the returned ordering always equals the exact one.
  friend std::strong_ordering operator<=>(const Filtered& lhs, const Filtered& rhs) {
    if (!filter_exact_only()) {
      FilterStats& stats = filter_stats();
      if (lhs.iv_.hi < rhs.iv_.lo) {
        ++stats.fast_hits;
        return std::strong_ordering::less;
      }
      if (lhs.iv_.lo > rhs.iv_.hi) {
        ++stats.fast_hits;
        return std::strong_ordering::greater;
      }
      if (lhs.iv_.is_point() && rhs.iv_.is_point() && lhs.iv_.lo == rhs.iv_.lo) {
        ++stats.fast_hits;
        return std::strong_ordering::equal;
      }
      if (lhs.fast_ && rhs.fast_) {
        ++stats.limb2_hits;
        return Dyadic128::compare(lhs.dy_, rhs.dy_);
      }
    }
    return exact_compare(lhs, rhs);
  }

  friend bool operator==(const Filtered& lhs, const Filtered& rhs) {
    return (lhs <=> rhs) == std::strong_ordering::equal;
  }

 private:
  static std::strong_ordering exact_compare(const Filtered& lhs, const Filtered& rhs);
  void accumulate_escaped(const Filtered& rhs, int sign_mult);
  void multiply_escaped(const Filtered& rhs);
  /// Escape hatch: materialize the exact Rational and leave the fast tier.
  void escape();
  /// iv_ is always derived from the authoritative value alone (never from
  /// interval-arithmetic history), so enclosures — and hence which tier
  /// decides each comparison — are deterministic functions of the value.
  void rebuild_interval_from_dyadic();
  void rebuild_interval_from_rational();

  FInterval iv_;   // sound enclosure of the value
  Dyadic128 dy_;   // authoritative iff fast_
  Rational rat_;   // authoritative iff !fast_
  bool fast_ = true;
};

}  // namespace aurv::numeric
