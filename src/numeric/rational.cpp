#include "numeric/rational.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "support/check.hpp"

namespace aurv::numeric {

namespace {

using i128 = __int128;
using u128 = unsigned __int128;

u128 magnitude(i128 value) { return value < 0 ? -static_cast<u128>(value) : static_cast<u128>(value); }

u128 gcd_u128(u128 a, u128 b) {
  while (b != 0) {
    const u128 rest = a % b;
    a = b;
    b = rest;
  }
  return a;
}

BigInt bigint_from_i128(i128 value) {
  const bool negative = value < 0;
  const u128 mag = magnitude(value);
  BigInt result = (BigInt(static_cast<unsigned long long>(mag >> 64)) << 64) +
                  BigInt(static_cast<unsigned long long>(mag));
  return negative ? -result : result;
}

/// |value| <= kInlineMax check on a BigInt via bit length (2^62 - 1 has 62
/// bits set... bit_length <= 62 means |v| < 2^62).
bool fits_inline(const BigInt& value) { return value.bit_length() <= 62; }

}  // namespace

Rational::Rational(long long value) {
  if (value >= -kInlineMax && value <= kInlineMax) {
    num_ = value;
    den_ = 1;
  } else {
    big_ = std::make_unique<Big>(Big{BigInt(value), BigInt(1)});
  }
}

Rational::Rational(BigInt value) : Rational(from_bigints(std::move(value), BigInt(1))) {}

Rational::Rational(BigInt numerator, BigInt denominator)
    : Rational(from_bigints(std::move(numerator), std::move(denominator))) {}

void Rational::copy_from(const Rational& other) {
  num_ = other.num_;
  den_ = other.den_;
  big_ = other.big_ ? std::make_unique<Big>(*other.big_) : nullptr;
}

Rational Rational::from_i128(i128 numerator, i128 denominator) {
  AURV_CHECK_MSG(denominator != 0, "Rational with zero denominator");
  if (denominator < 0) {
    numerator = -numerator;
    denominator = -denominator;
  }
  if (numerator == 0) {
    return Rational();
  }
  const u128 g = gcd_u128(magnitude(numerator), static_cast<u128>(denominator));
  if (g > 1) {
    numerator /= static_cast<i128>(g);  // exact: g divides both
    denominator /= static_cast<i128>(g);
  }
  if (magnitude(numerator) <= static_cast<u128>(kInlineMax) &&
      static_cast<u128>(denominator) <= static_cast<u128>(kInlineMax)) {
    Rational result;
    result.num_ = static_cast<std::int64_t>(numerator);
    result.den_ = static_cast<std::int64_t>(denominator);
    return result;
  }
  return Rational(std::make_unique<Big>(
      Big{bigint_from_i128(numerator), bigint_from_i128(denominator)}));
}

Rational Rational::from_bigints(BigInt numerator, BigInt denominator) {
  AURV_CHECK_MSG(!denominator.is_zero(), "Rational with zero denominator");
  if (denominator.is_negative()) {
    numerator = -numerator;
    denominator = -denominator;
  }
  if (numerator.is_zero()) return Rational();
  const BigInt g = BigInt::gcd(numerator, denominator);
  if (g != BigInt(1)) {
    numerator = numerator / g;
    denominator = denominator / g;
  }
  if (fits_inline(numerator) && fits_inline(denominator)) {
    Rational result;
    result.num_ = numerator.to_int64();
    result.den_ = denominator.to_int64();
    return result;
  }
  return Rational(std::make_unique<Big>(Big{std::move(numerator), std::move(denominator)}));
}

void Rational::try_demote() {
  if (!big_) return;
  if (fits_inline(big_->num) && fits_inline(big_->den)) {
    num_ = big_->num.to_int64();
    den_ = big_->den.to_int64();
    big_.reset();
  }
}

Rational::Big Rational::as_big() const {
  if (big_) return *big_;
  return Big{BigInt(num_), BigInt(den_)};
}

Rational Rational::dyadic(long long numerator, std::uint64_t pow2_exponent) {
  if (pow2_exponent < 62) {
    return from_i128(numerator, i128{1} << pow2_exponent);
  }
  return from_bigints(BigInt(numerator), BigInt::pow2(pow2_exponent));
}

Rational Rational::pow2(std::uint64_t exponent) {
  if (exponent < 62) {
    Rational result;
    result.num_ = std::int64_t{1} << exponent;
    return result;
  }
  return Rational(std::make_unique<Big>(Big{BigInt::pow2(exponent), BigInt(1)}));
}

Rational Rational::from_string(std::string_view text) {
  const std::size_t slash = text.find('/');
  if (slash == std::string_view::npos) return Rational(BigInt::from_string(text));
  return from_bigints(BigInt::from_string(text.substr(0, slash)),
                      BigInt::from_string(text.substr(slash + 1)));
}

Rational Rational::from_double(double value) {
  if (!std::isfinite(value)) throw std::invalid_argument("Rational::from_double: non-finite");
  if (value == 0.0) return Rational();
  int exponent = 0;
  const double mantissa = std::frexp(value, &exponent);  // value = mantissa * 2^exponent
  // Scale the mantissa to a 53-bit integer: mantissa * 2^53 is integral.
  const auto scaled = static_cast<long long>(std::ldexp(mantissa, 53));
  const std::int64_t shift = exponent - 53;
  if (shift >= 0) {
    if (shift <= 62) return from_i128(static_cast<i128>(scaled) << shift, 1);
    return Rational(BigInt(scaled) << static_cast<std::uint64_t>(shift));
  }
  return dyadic(scaled, static_cast<std::uint64_t>(-shift));
}

BigInt Rational::numerator() const { return big_ ? big_->num : BigInt(num_); }
BigInt Rational::denominator() const { return big_ ? big_->den : BigInt(den_); }

Rational Rational::operator-() const {
  if (!big_) {
    Rational result;
    result.num_ = -num_;
    result.den_ = den_;
    return result;
  }
  return Rational(std::make_unique<Big>(Big{-big_->num, big_->den}));
}

Rational Rational::abs() const { return is_negative() ? -*this : *this; }

Rational Rational::reciprocal() const {
  AURV_CHECK_MSG(!is_zero(), "reciprocal of zero");
  if (!big_) {
    Rational result;
    if (num_ < 0) {
      result.num_ = -den_;
      result.den_ = -num_;
    } else {
      result.num_ = den_;
      result.den_ = num_;
    }
    return result;
  }
  Big flipped{big_->den, big_->num};
  if (flipped.den.is_negative()) {
    flipped.num = -flipped.num;
    flipped.den = -flipped.den;
  }
  Rational result(std::make_unique<Big>(std::move(flipped)));
  result.try_demote();  // e.g. reciprocal of 1/2^100 is an integer tier... still big; harmless
  return result;
}

Rational& Rational::operator+=(const Rational& rhs) {
  if (!big_ && !rhs.big_) {
    // |a|,|b| < 2^62: each product < 2^124, their sum < 2^125 < 2^127.
    const i128 numerator =
        static_cast<i128>(num_) * rhs.den_ + static_cast<i128>(rhs.num_) * den_;
    const i128 denominator = static_cast<i128>(den_) * rhs.den_;
    return *this = from_i128(numerator, denominator);
  }
  const Big a = as_big();
  const Big b = rhs.as_big();
  return *this = from_bigints(a.num * b.den + b.num * a.den, a.den * b.den);
}

Rational& Rational::operator-=(const Rational& rhs) { return *this += -rhs; }

Rational& Rational::operator*=(const Rational& rhs) {
  if (!big_ && !rhs.big_) {
    return *this = from_i128(static_cast<i128>(num_) * rhs.num_,
                             static_cast<i128>(den_) * rhs.den_);
  }
  const Big a = as_big();
  const Big b = rhs.as_big();
  return *this = from_bigints(a.num * b.num, a.den * b.den);
}

Rational& Rational::operator/=(const Rational& rhs) {
  AURV_CHECK_MSG(!rhs.is_zero(), "Rational division by zero");
  if (!big_ && !rhs.big_) {
    return *this = from_i128(static_cast<i128>(num_) * rhs.den_,
                             static_cast<i128>(den_) * rhs.num_);
  }
  const Big a = as_big();
  const Big b = rhs.as_big();
  return *this = from_bigints(a.num * b.den, a.den * b.num);
}

bool operator==(const Rational& lhs, const Rational& rhs) noexcept {
  // Canonical forms are unique and any value that fits the inline tier is
  // stored inline, so cross-tier values are never equal.
  if (!lhs.big_ && !rhs.big_) return lhs.num_ == rhs.num_ && lhs.den_ == rhs.den_;
  if (static_cast<bool>(lhs.big_) != static_cast<bool>(rhs.big_)) return false;
  return lhs.big_->num == rhs.big_->num && lhs.big_->den == rhs.big_->den;
}

std::strong_ordering operator<=>(const Rational& lhs, const Rational& rhs) noexcept {
  if (!lhs.big_ && !rhs.big_) {
    const i128 left = static_cast<i128>(lhs.num_) * rhs.den_;
    const i128 right = static_cast<i128>(rhs.num_) * lhs.den_;
    if (left < right) return std::strong_ordering::less;
    if (left > right) return std::strong_ordering::greater;
    return std::strong_ordering::equal;
  }
  const Rational::Big a = lhs.as_big();
  const Rational::Big b = rhs.as_big();
  return a.num * b.den <=> b.num * a.den;
}

BigInt Rational::floor() const {
  if (!big_) {
    std::int64_t quotient = num_ / den_;
    if (num_ % den_ != 0 && num_ < 0) --quotient;
    return BigInt(quotient);
  }
  const BigInt::DivModResult dm = BigInt::divmod(big_->num, big_->den);
  if (big_->num.is_negative() && !dm.remainder.is_zero()) return dm.quotient - BigInt(1);
  return dm.quotient;
}

BigInt Rational::ceil() const {
  if (!big_) {
    std::int64_t quotient = num_ / den_;
    if (num_ % den_ != 0 && num_ > 0) ++quotient;
    return BigInt(quotient);
  }
  const BigInt::DivModResult dm = BigInt::divmod(big_->num, big_->den);
  if (!big_->num.is_negative() && !dm.remainder.is_zero()) return dm.quotient + BigInt(1);
  return dm.quotient;
}

double Rational::to_double() const noexcept {
  if (!big_) {
    return static_cast<double>(num_) / static_cast<double>(den_);
  }
  const BigInt& num = big_->num;
  const BigInt& den = big_->den;
  if (num.is_zero()) return 0.0;
  // Align both operands so the division happens on ~62 significant bits,
  // then restore the binary exponent with ldexp. Avoids overflow/underflow
  // of the separate to_double() conversions for huge operands.
  const std::int64_t nbits = static_cast<std::int64_t>(num.bit_length());
  const std::int64_t dbits = static_cast<std::int64_t>(den.bit_length());
  constexpr std::int64_t kTarget = 62;
  BigInt n = num.abs();
  BigInt d = den;
  std::int64_t exponent = 0;
  if (nbits > kTarget) {
    n >>= static_cast<std::uint64_t>(nbits - kTarget);
    exponent += nbits - kTarget;
  }
  if (dbits > kTarget) {
    d >>= static_cast<std::uint64_t>(dbits - kTarget);
    exponent -= dbits - kTarget;
  }
  const double quotient = n.to_double() / d.to_double();
  const double result = std::ldexp(quotient, static_cast<int>(exponent));
  return num.is_negative() ? -result : result;
}

std::string Rational::to_string() const {
  if (!big_) {
    if (den_ == 1) return std::to_string(num_);
    return std::to_string(num_) + "/" + std::to_string(den_);
  }
  if (big_->den == BigInt(1)) return big_->num.to_string();
  return big_->num.to_string() + "/" + big_->den.to_string();
}

}  // namespace aurv::numeric
