#include "numeric/rational.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "support/check.hpp"

namespace aurv::numeric {

namespace {

using i128 = __int128;
using u128 = unsigned __int128;

u128 magnitude(i128 value) { return value < 0 ? -static_cast<u128>(value) : static_cast<u128>(value); }

u128 gcd_u128(u128 a, u128 b) {
  while (b != 0) {
    const u128 rest = a % b;
    a = b;
    b = rest;
  }
  return a;
}

unsigned tz_u128(u128 value) {
  const auto low = static_cast<std::uint64_t>(value);
  if (low != 0) return static_cast<unsigned>(std::countr_zero(low));
  return 64 + static_cast<unsigned>(std::countr_zero(static_cast<std::uint64_t>(value >> 64)));
}

BigInt bigint_from_i128(i128 value) {
  const bool negative = value < 0;
  const u128 mag = magnitude(value);
  BigInt result = (BigInt(static_cast<unsigned long long>(mag >> 64)) << 64) +
                  BigInt(static_cast<unsigned long long>(mag));
  return negative ? -result : result;
}

/// |value| <= kInlineMax check on a BigInt via bit length (bit_length <= 62
/// means |v| < 2^62).
bool fits_inline(const BigInt& value) { return value.bit_length() <= 62; }

/// The dyadic tag for a canonical (positive) denominator.
std::int64_t exponent_of(const BigInt& den) {
  return den.is_pow2() ? static_cast<std::int64_t>(den.trailing_zero_bits()) : -1;
}

}  // namespace

Rational::Rational(long long value) {
  if (value >= -kInlineMax && value <= kInlineMax) {
    num_ = value;
    den_ = 1;
  } else {
    big_ = std::make_unique<Big>(Big{BigInt(value), BigInt(1), 0});
  }
}

Rational::Rational(BigInt value) : Rational(from_bigints(std::move(value), BigInt(1))) {}

Rational::Rational(BigInt numerator, BigInt denominator)
    : Rational(from_bigints(std::move(numerator), std::move(denominator))) {}

void Rational::copy_from(const Rational& other) {
  num_ = other.num_;
  den_ = other.den_;
  big_ = other.big_ ? std::make_unique<Big>(*other.big_) : nullptr;
}

Rational Rational::from_i128(i128 numerator, i128 denominator) {
  AURV_CHECK_MSG(denominator != 0, "Rational with zero denominator");
  if (denominator < 0) {
    numerator = -numerator;
    denominator = -denominator;
  }
  if (numerator == 0) {
    return Rational();
  }
  const auto uden = static_cast<u128>(denominator);
  if ((uden & (uden - 1)) == 0) {
    // Dyadic: the reduction is a pair of exact shifts, no gcd. Arithmetic
    // right shift of a negative numerator is exact here (2^t divides it).
    const unsigned t = std::min(tz_u128(magnitude(numerator)), tz_u128(uden));
    numerator >>= t;
    denominator >>= t;
  } else {
    const u128 g = gcd_u128(magnitude(numerator), uden);
    if (g > 1) {
      numerator /= static_cast<i128>(g);  // exact: g divides both
      denominator /= static_cast<i128>(g);
    }
  }
  if (magnitude(numerator) <= static_cast<u128>(kInlineMax) &&
      static_cast<u128>(denominator) <= static_cast<u128>(kInlineMax)) {
    Rational result;
    result.num_ = static_cast<std::int64_t>(numerator);
    result.den_ = static_cast<std::int64_t>(denominator);
    return result;
  }
  const auto d = static_cast<u128>(denominator);
  const std::int64_t den_exp =
      (d & (d - 1)) == 0 ? static_cast<std::int64_t>(tz_u128(d)) : std::int64_t{-1};
  return Rational(std::make_unique<Big>(
      Big{bigint_from_i128(numerator), bigint_from_i128(denominator), den_exp}));
}

Rational Rational::from_bigints(BigInt numerator, BigInt denominator) {
  AURV_CHECK_MSG(!denominator.is_zero(), "Rational with zero denominator");
  if (denominator.is_negative()) {
    numerator.negate();
    denominator.negate();
  }
  if (numerator.is_zero()) return Rational();
  if (denominator.is_pow2()) {
    // Dyadic: normalize by trailing zeros, skipping BigInt::gcd entirely.
    Rational result;
    result.assign_dyadic(std::move(numerator), denominator.trailing_zero_bits());
    return result;
  }
  const BigInt g = BigInt::gcd(numerator, denominator);
  if (g != BigInt(1)) {
    numerator = numerator / g;
    denominator = denominator / g;
  }
  if (fits_inline(numerator) && fits_inline(denominator)) {
    Rational result;
    result.num_ = numerator.to_int64();
    result.den_ = denominator.to_int64();
    return result;
  }
  const std::int64_t den_exp = exponent_of(denominator);
  return Rational(
      std::make_unique<Big>(Big{std::move(numerator), std::move(denominator), den_exp}));
}

void Rational::assign_dyadic(BigInt numerator, std::uint64_t den_exp) {
  if (numerator.is_zero()) {
    num_ = 0;
    den_ = 1;
    big_.reset();
    return;
  }
  if (den_exp > 0) {
    const std::uint64_t t = std::min(numerator.trailing_zero_bits(), den_exp);
    if (t > 0) {
      numerator >>= t;
      den_exp -= t;
    }
  }
  if (numerator.bit_length() <= 62 && den_exp <= 61) {
    num_ = numerator.to_int64();
    den_ = std::int64_t{1} << den_exp;
    big_.reset();
    return;
  }
  const auto exponent = static_cast<std::int64_t>(den_exp);
  if (big_) {
    // Reuse the allocation; the denominator too when the exponent is
    // unchanged (the common case for event-time accumulation).
    big_->num = std::move(numerator);
    if (big_->den_exp != exponent) {
      big_->den = BigInt::pow2(den_exp);
      big_->den_exp = exponent;
    }
  } else {
    big_ = std::make_unique<Big>(
        Big{std::move(numerator), BigInt::pow2(den_exp), exponent});
  }
}

void Rational::try_demote() {
  if (!big_) return;
  if (fits_inline(big_->num) && fits_inline(big_->den)) {
    num_ = big_->num.to_int64();
    den_ = big_->den.to_int64();
    big_.reset();
  }
}

const BigInt& Rational::num_ref(BigInt& store) const {
  if (big_) return big_->num;
  store = BigInt(num_);
  return store;
}

const BigInt& Rational::den_ref(BigInt& store) const {
  if (big_) return big_->den;
  store = BigInt(den_);
  return store;
}

std::int64_t Rational::dyadic_exponent() const noexcept {
  if (big_) return big_->den_exp;
  const auto den = static_cast<std::uint64_t>(den_);
  return (den & (den - 1)) == 0 ? std::countr_zero(den) : -1;
}

Rational Rational::dyadic(long long numerator, std::uint64_t pow2_exponent) {
  if (pow2_exponent < 62) {
    return from_i128(numerator, i128{1} << pow2_exponent);
  }
  Rational result;
  result.assign_dyadic(BigInt(numerator), pow2_exponent);
  return result;
}

Rational Rational::pow2(std::uint64_t exponent) {
  if (exponent < 62) {
    Rational result;
    result.num_ = std::int64_t{1} << exponent;
    return result;
  }
  return Rational(std::make_unique<Big>(Big{BigInt::pow2(exponent), BigInt(1), 0}));
}

Rational Rational::from_string(std::string_view text) {
  const std::size_t slash = text.find('/');
  if (slash == std::string_view::npos) return Rational(BigInt::from_string(text));
  return from_bigints(BigInt::from_string(text.substr(0, slash)),
                      BigInt::from_string(text.substr(slash + 1)));
}

Rational Rational::from_double(double value) {
  if (!std::isfinite(value)) throw std::invalid_argument("Rational::from_double: non-finite");
  if (value == 0.0) return Rational();
  int exponent = 0;
  const double mantissa = std::frexp(value, &exponent);  // value = mantissa * 2^exponent
  // Scale the mantissa to a 53-bit integer: mantissa * 2^53 is integral.
  const auto scaled = static_cast<long long>(std::ldexp(mantissa, 53));
  const std::int64_t shift = exponent - 53;
  if (shift >= 0) {
    if (shift <= 62) return from_i128(static_cast<i128>(scaled) << shift, 1);
    return Rational(BigInt(scaled) << static_cast<std::uint64_t>(shift));
  }
  return dyadic(scaled, static_cast<std::uint64_t>(-shift));
}

Rational Rational::from_dyadic128(i128 mantissa, std::int64_t pow2_shift) {
  if (mantissa == 0) return Rational();
  if (pow2_shift >= 0) {
    return Rational(bigint_from_i128(mantissa) << static_cast<std::uint64_t>(pow2_shift));
  }
  Rational result;
  result.assign_dyadic(bigint_from_i128(mantissa), static_cast<std::uint64_t>(-pow2_shift));
  return result;
}

bool Rational::dyadic128_view(i128& mantissa, std::int64_t& pow2_shift) const noexcept {
  if (!big_) {
    const auto den = static_cast<std::uint64_t>(den_);
    if ((den & (den - 1)) != 0) return false;
    mantissa = num_;
    pow2_shift = -static_cast<std::int64_t>(std::countr_zero(den));
    return true;
  }
  const std::int64_t den_exp = big_->den_exp;
  if (den_exp < 0) return false;
  const BigInt& num = big_->num;
  const std::uint64_t bits = num.bit_length();
  const std::uint64_t tz = num.trailing_zero_bits();
  if (bits - tz > 127) return false;
  const std::optional<u128> mag = num.magnitude_shifted(tz);
  if (!mag) return false;
  mantissa = num.is_negative() ? -static_cast<i128>(*mag) : static_cast<i128>(*mag);
  pow2_shift = static_cast<std::int64_t>(tz) - den_exp;
  return true;
}

BigInt Rational::numerator() const { return big_ ? big_->num : BigInt(num_); }
BigInt Rational::denominator() const { return big_ ? big_->den : BigInt(den_); }

Rational Rational::operator-() const {
  if (!big_) {
    Rational result;
    result.num_ = -num_;
    result.den_ = den_;
    return result;
  }
  return Rational(std::make_unique<Big>(Big{-big_->num, big_->den, big_->den_exp}));
}

Rational Rational::abs() const { return is_negative() ? -*this : *this; }

Rational Rational::reciprocal() const {
  AURV_CHECK_MSG(!is_zero(), "reciprocal of zero");
  if (!big_) {
    Rational result;
    if (num_ < 0) {
      result.num_ = -den_;
      result.den_ = -num_;
    } else {
      result.num_ = den_;
      result.den_ = num_;
    }
    return result;
  }
  Big flipped{big_->den, big_->num, -1};
  if (flipped.den.is_negative()) {
    flipped.num.negate();
    flipped.den.negate();
  }
  flipped.den_exp = exponent_of(flipped.den);
  Rational result(std::make_unique<Big>(std::move(flipped)));
  result.try_demote();  // e.g. reciprocal of 1/2^100 is an integer tier... still big; harmless
  return result;
}

void Rational::add_impl(const Rational& rhs, int sign_mult) {
  if (!big_ && !rhs.big_) {
    // |a|,|b| < 2^62: each product < 2^124, their sum < 2^125 < 2^127.
    const i128 numerator = static_cast<i128>(num_) * rhs.den_ +
                           sign_mult * static_cast<i128>(rhs.num_) * den_;
    const i128 denominator = static_cast<i128>(den_) * rhs.den_;
    *this = from_i128(numerator, denominator);
    return;
  }
  if (&rhs == this) {
    // Self-aliasing would read a moved-from numerator below.
    const Rational copy(rhs);
    add_impl(copy, sign_mult);
    return;
  }
  const std::int64_t ea = dyadic_exponent();
  const std::int64_t eb = rhs.dyadic_exponent();
  BigInt rhs_store;
  if (ea >= 0 && eb >= 0) {
    // Dyadic fast path: shift-align the numerators and integer-add; the
    // result denominator is 2^max(ea, eb) before trailing-zero reduction.
    // No gcd, no cross multiplication.
    const BigInt& rhs_num = rhs.num_ref(rhs_store);
    BigInt num = big_ ? std::move(big_->num) : BigInt(num_);
    if (eb > ea) num <<= static_cast<std::uint64_t>(eb - ea);
    num.add_shifted(rhs_num, static_cast<std::uint64_t>(ea > eb ? ea - eb : 0), sign_mult);
    assign_dyadic(std::move(num), static_cast<std::uint64_t>(std::max(ea, eb)));
    return;
  }
  BigInt num_store, den_store, rhs_den_store;
  const BigInt& a_num = num_ref(num_store);
  const BigInt& a_den = den_ref(den_store);
  const BigInt& b_num = rhs.num_ref(rhs_store);
  const BigInt& b_den = rhs.den_ref(rhs_den_store);
  BigInt num = a_num * b_den;
  BigInt cross = b_num * a_den;
  if (sign_mult < 0) cross.negate();
  num += cross;
  *this = from_bigints(std::move(num), a_den * b_den);
}

Rational& Rational::operator+=(const Rational& rhs) {
  add_impl(rhs, 1);
  return *this;
}

Rational& Rational::operator-=(const Rational& rhs) {
  add_impl(rhs, -1);
  return *this;
}

Rational& Rational::operator*=(const Rational& rhs) {
  if (!big_ && !rhs.big_) {
    return *this = from_i128(static_cast<i128>(num_) * rhs.num_,
                             static_cast<i128>(den_) * rhs.den_);
  }
  const std::int64_t ea = dyadic_exponent();
  const std::int64_t eb = rhs.dyadic_exponent();
  BigInt a_store, b_store;
  if (ea >= 0 && eb >= 0) {
    // Dyadic fast path: one integer multiply, trailing-zero normalize.
    BigInt num = num_ref(a_store) * rhs.num_ref(b_store);
    assign_dyadic(std::move(num), static_cast<std::uint64_t>(ea + eb));
    return *this;
  }
  BigInt a_den_store, b_den_store;
  const BigInt& a_num = num_ref(a_store);
  const BigInt& a_den = den_ref(a_den_store);
  const BigInt& b_num = rhs.num_ref(b_store);
  const BigInt& b_den = rhs.den_ref(b_den_store);
  return *this = from_bigints(a_num * b_num, a_den * b_den);
}

Rational& Rational::operator/=(const Rational& rhs) {
  AURV_CHECK_MSG(!rhs.is_zero(), "Rational division by zero");
  if (!big_ && !rhs.big_) {
    return *this = from_i128(static_cast<i128>(num_) * rhs.den_,
                             static_cast<i128>(den_) * rhs.num_);
  }
  BigInt a_num_store, a_den_store, b_num_store, b_den_store;
  const BigInt& a_num = num_ref(a_num_store);
  const BigInt& a_den = den_ref(a_den_store);
  const BigInt& b_num = rhs.num_ref(b_num_store);
  const BigInt& b_den = rhs.den_ref(b_den_store);
  // from_bigints re-detects a dyadic denominator (e.g. dividing by an
  // integer power of two), so the gcd skip still applies when possible.
  return *this = from_bigints(a_num * b_den, a_den * b_num);
}

bool operator==(const Rational& lhs, const Rational& rhs) noexcept {
  // Canonical forms are unique and any value that fits the inline tier is
  // stored inline, so cross-tier values are never equal.
  if (!lhs.big_ && !rhs.big_) return lhs.num_ == rhs.num_ && lhs.den_ == rhs.den_;
  if (static_cast<bool>(lhs.big_) != static_cast<bool>(rhs.big_)) return false;
  return lhs.big_->num == rhs.big_->num && lhs.big_->den == rhs.big_->den;
}

std::strong_ordering operator<=>(const Rational& lhs, const Rational& rhs) noexcept {
  if (!lhs.big_ && !rhs.big_) {
    const i128 left = static_cast<i128>(lhs.num_) * rhs.den_;
    const i128 right = static_cast<i128>(rhs.num_) * lhs.den_;
    if (left < right) return std::strong_ordering::less;
    if (left > right) return std::strong_ordering::greater;
    return std::strong_ordering::equal;
  }
  const int sign_a = lhs.sign();
  const int sign_b = rhs.sign();
  if (sign_a != sign_b) return sign_a <=> sign_b;
  // sign_a == sign_b != 0: a big-tier value is never zero.
  const std::int64_t ea = lhs.dyadic_exponent();
  const std::int64_t eb = rhs.dyadic_exponent();
  BigInt a_store, b_store;
  const BigInt& a_num = lhs.num_ref(a_store);
  const BigInt& b_num = rhs.num_ref(b_store);
  if (ea >= 0 && eb >= 0) {
    // Dyadic fast path. First compare the positions of the leading bits
    // (floor(log2 |v|) = bit_length(num) - 1 - e): distinct positions
    // decide the order without touching the limbs.
    const std::int64_t adj_a = static_cast<std::int64_t>(a_num.bit_length()) - ea;
    const std::int64_t adj_b = static_cast<std::int64_t>(b_num.bit_length()) - eb;
    if (adj_a != adj_b) {
      const bool magnitude_less = adj_a < adj_b;
      const bool value_less = sign_a > 0 ? magnitude_less : !magnitude_less;
      return value_less ? std::strong_ordering::less : std::strong_ordering::greater;
    }
    // Leading bits tie: align the numerators with one shift and compare.
    if (ea >= eb) return a_num <=> (b_num << static_cast<std::uint64_t>(ea - eb));
    return (a_num << static_cast<std::uint64_t>(eb - ea)) <=> b_num;
  }
  BigInt a_den_store, b_den_store;
  const BigInt& a_den = lhs.den_ref(a_den_store);
  const BigInt& b_den = rhs.den_ref(b_den_store);
  return a_num * b_den <=> b_num * a_den;
}

BigInt Rational::floor() const {
  if (!big_) {
    std::int64_t quotient = num_ / den_;
    if (num_ % den_ != 0 && num_ < 0) --quotient;
    return BigInt(quotient);
  }
  if (big_->den_exp == 0) return big_->num;  // integer stored big
  if (big_->den_exp > 0) {
    // Canonical dyadic with e > 0 has an odd numerator, so the value is
    // never integral: shift truncates toward zero, adjust negatives.
    BigInt quotient = big_->num >> static_cast<std::uint64_t>(big_->den_exp);
    if (big_->num.is_negative()) quotient -= BigInt(1);
    return quotient;
  }
  const BigInt::DivModResult dm = BigInt::divmod(big_->num, big_->den);
  if (big_->num.is_negative() && !dm.remainder.is_zero()) return dm.quotient - BigInt(1);
  return dm.quotient;
}

BigInt Rational::ceil() const {
  if (!big_) {
    std::int64_t quotient = num_ / den_;
    if (num_ % den_ != 0 && num_ > 0) ++quotient;
    return BigInt(quotient);
  }
  if (big_->den_exp == 0) return big_->num;  // integer stored big
  if (big_->den_exp > 0) {
    BigInt quotient = big_->num >> static_cast<std::uint64_t>(big_->den_exp);
    if (!big_->num.is_negative()) quotient += BigInt(1);
    return quotient;
  }
  const BigInt::DivModResult dm = BigInt::divmod(big_->num, big_->den);
  if (!big_->num.is_negative() && !dm.remainder.is_zero()) return dm.quotient + BigInt(1);
  return dm.quotient;
}

double Rational::to_double() const noexcept {
  if (!big_) {
    return static_cast<double>(num_) / static_cast<double>(den_);
  }
  const BigInt& num = big_->num;
  const BigInt& den = big_->den;
  if (num.is_zero()) return 0.0;
  // Align both operands so the division happens on ~62 significant bits,
  // then restore the binary exponent with ldexp. Avoids overflow/underflow
  // of the separate to_double() conversions for huge operands.
  const std::int64_t nbits = static_cast<std::int64_t>(num.bit_length());
  const std::int64_t dbits = static_cast<std::int64_t>(den.bit_length());
  constexpr std::int64_t kTarget = 62;
  BigInt n = num.abs();
  BigInt d = den;
  std::int64_t exponent = 0;
  if (nbits > kTarget) {
    n >>= static_cast<std::uint64_t>(nbits - kTarget);
    exponent += nbits - kTarget;
  }
  if (dbits > kTarget) {
    d >>= static_cast<std::uint64_t>(dbits - kTarget);
    exponent -= dbits - kTarget;
  }
  const double quotient = n.to_double() / d.to_double();
  const double result = std::ldexp(quotient, static_cast<int>(exponent));
  return num.is_negative() ? -result : result;
}

std::string Rational::to_string() const {
  if (!big_) {
    if (den_ == 1) return std::to_string(num_);
    return std::to_string(num_) + "/" + std::to_string(den_);
  }
  if (big_->den_exp == 0) return big_->num.to_string();
  return big_->num.to_string() + "/" + big_->den.to_string();
}

}  // namespace aurv::numeric
