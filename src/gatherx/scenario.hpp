// GatherScenarioSpec — the declarative description of an n-agent gathering
// census: everything needed to reproduce a TAB-7-style sweep of the
// Section 5 open problem as data in a scenarios/gather_census_*.json file
// instead of a hand-rolled C++ loop. Mirrors the two-agent ScenarioSpec
// (strict parsing, exact-rational fields, FNV-1a fingerprint pinned by
// checkpoints) with the gathering model's own vocabulary: a gather sampler
// family draws the configurations, and each configuration runs once per
// configured stop policy.
//
// Schema (see EXPERIMENTS.md for the prose version):
//
//   {
//     "schema": 1,
//     "kind": "gather-census",              // distinguishes from campaigns
//     "name": "gather_census_disk",
//     "description": "optional free text",
//     "algorithm": "latecomers",            // instance-blind entries only:
//                                           // every agent runs the *common*
//                                           // program ("boundary" and
//                                           // "recommended" are rejected)
//     "seed": 2020,
//     "replications": 1,                    // runs per configuration
//     "policies": ["first-sight", "all-visible"],  // optional; default both
//     "source": {
//       "sampler": "disk",                  // exp::gather_sampler_names()
//       "count": 200,
//       "ranges": { "n_min": 3, "n_max": 5, "r_min": 0.5, "r_max": 1.5,
//                   "spread_min": 1.5, "spread_max": 4, "wake_max": 8 }
//     },
//     "engine": {                           // all optional
//       "max_events": 4000000,
//       "contact_slack": 1e-9,
//       "horizon": "4096",                  // exact rational; absent = none
//       "success_diameter": 2.5             // absent = policy-natural
//     }                                     //   default (see
//   }                                       //   gather::default_success_diameter)
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "agents/gather_sampler.hpp"
#include "gather/engine.hpp"
#include "numeric/rational.hpp"
#include "support/json.hpp"

namespace aurv::gatherx {

struct GatherScenarioSpec {
  std::string name;
  std::string description;
  std::string algorithm = "latecomers";
  std::uint64_t seed = 0;
  std::uint64_t replications = 1;

  /// Stop policies each configuration runs under, in spec order (at least
  /// one, no duplicates). Default: both generalizations.
  std::vector<gather::StopPolicy> policies = {gather::StopPolicy::FirstSight,
                                              gather::StopPolicy::AllVisible};

  std::string sampler = "disk";
  std::uint64_t count = 0;
  agents::GatherSamplerRanges ranges;

  /// Success diameter; absent = the policy-natural default per run
  /// (gather::default_success_diameter, which depends on n and r).
  std::optional<double> success_diameter;
  double contact_slack = 1e-9;
  std::uint64_t max_events = 4'000'000;
  std::optional<numeric::Rational> horizon;

  /// count x replications — each job runs once per configured policy.
  [[nodiscard]] std::uint64_t total_jobs() const;

  /// The engine config one run executes under: the spec's knobs plus the
  /// policy-natural success diameter when the spec does not pin one.
  [[nodiscard]] gather::GatherConfig engine_config(gather::StopPolicy policy, std::size_t n,
                                                   double r) const;

  /// Strict parse; throws support::JsonError / std::invalid_argument naming
  /// the offending field. Validates the algorithm (must be instance-blind)
  /// and the gather sampler against the registries at load time.
  [[nodiscard]] static GatherScenarioSpec from_json(const support::Json& json);
  [[nodiscard]] support::Json to_json() const;

  [[nodiscard]] static GatherScenarioSpec load(const std::string& path);
  void save(const std::string& path) const;

  /// FNV-1a over the canonical serialization; census checkpoints store it
  /// so resuming an edited spec is refused.
  [[nodiscard]] std::uint64_t fingerprint() const;
};

}  // namespace aurv::gatherx
