#include "gatherx/aggregate.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace aurv::gatherx {

using support::Json;

void PolicyAggregate::add(const gather::GatherResult& result, bool funnel) {
  if (runs == 0) {
    min_diameter_floor = result.min_diameter_seen;
  } else {
    min_diameter_floor = std::min(min_diameter_floor, result.min_diameter_seen);
  }
  ++runs;
  ++stop_reasons[static_cast<std::size_t>(result.reason)];
  total_events += result.events;
  max_events = std::max(max_events, result.events);
  if (funnel) {
    ++funnel_runs;
    if (result.gathered) ++funnel_gathered;
  }
  if (result.gathered) {
    if (gathered == 0) {
      gather_time_min = result.gather_time;
      gather_time_max = result.gather_time;
    } else {
      gather_time_min = std::min(gather_time_min, result.gather_time);
      gather_time_max = std::max(gather_time_max, result.gather_time);
    }
    ++gathered;
    gather_time_sum += result.gather_time;
    ++gather_time_histogram[static_cast<std::size_t>(
        exp::meet_time_bucket(result.gather_time))];
  }
}

void PolicyAggregate::merge(const PolicyAggregate& other) {
  if (other.runs == 0) return;
  if (runs == 0) {
    *this = other;
    return;
  }
  min_diameter_floor = std::min(min_diameter_floor, other.min_diameter_floor);
  runs += other.runs;
  for (std::size_t k = 0; k < stop_reasons.size(); ++k) stop_reasons[k] += other.stop_reasons[k];
  total_events += other.total_events;
  max_events = std::max(max_events, other.max_events);
  funnel_runs += other.funnel_runs;
  funnel_gathered += other.funnel_gathered;
  if (other.gathered > 0) {
    if (gathered == 0) {
      gather_time_min = other.gather_time_min;
      gather_time_max = other.gather_time_max;
    } else {
      gather_time_min = std::min(gather_time_min, other.gather_time_min);
      gather_time_max = std::max(gather_time_max, other.gather_time_max);
    }
    gathered += other.gathered;
    gather_time_sum += other.gather_time_sum;
    for (std::size_t k = 0; k < gather_time_histogram.size(); ++k)
      gather_time_histogram[k] += other.gather_time_histogram[k];
  }
}

double PolicyAggregate::gather_time_percentile(double p) const {
  return exp::histogram_percentile(gather_time_histogram, gathered, p, gather_time_max);
}

Json PolicyAggregate::to_json() const {
  Json json = Json::object();
  json.set("runs", Json(runs));
  json.set("gathered", Json(gathered));
  json.set("gather_rate", Json(gather_rate()));
  Json reasons = Json::object();
  for (std::size_t k = 0; k < stop_reasons.size(); ++k) {
    reasons.set(gather::to_string(static_cast<gather::GatherStop>(k)), Json(stop_reasons[k]));
  }
  json.set("stop_reasons", std::move(reasons));
  json.set("total_events", Json(total_events));
  json.set("max_events", Json(max_events));
  json.set("gather_time_sum", Json(gather_time_sum));
  json.set("gather_time_min", Json(gather_time_min));
  json.set("gather_time_max", Json(gather_time_max));
  json.set("gather_time_p50", Json(gather_time_percentile(0.50)));
  json.set("gather_time_p95", Json(gather_time_percentile(0.95)));
  json.set("gather_time_p99", Json(gather_time_percentile(0.99)));
  Json histogram = Json::array();
  for (const std::uint64_t count : gather_time_histogram) histogram.push_back(Json(count));
  json.set("gather_time_histogram", std::move(histogram));
  json.set("min_diameter_floor", Json(min_diameter_floor));
  json.set("funnel_runs", Json(funnel_runs));
  json.set("funnel_gathered", Json(funnel_gathered));
  return json;
}

PolicyAggregate PolicyAggregate::from_json(const Json& json) {
  PolicyAggregate aggregate;
  aggregate.runs = json.at("runs").as_uint();
  aggregate.gathered = json.at("gathered").as_uint();
  const Json& reasons = json.at("stop_reasons");
  for (std::size_t k = 0; k < aggregate.stop_reasons.size(); ++k) {
    aggregate.stop_reasons[k] =
        reasons.at(gather::to_string(static_cast<gather::GatherStop>(k))).as_uint();
  }
  aggregate.total_events = json.at("total_events").as_uint();
  aggregate.max_events = json.at("max_events").as_uint();
  aggregate.gather_time_sum = json.at("gather_time_sum").as_number();
  aggregate.gather_time_min = json.at("gather_time_min").as_number();
  aggregate.gather_time_max = json.at("gather_time_max").as_number();
  const Json::Array& histogram = json.at("gather_time_histogram").as_array();
  AURV_CHECK_MSG(histogram.size() == aggregate.gather_time_histogram.size(),
                 "histogram size mismatch in checkpoint");
  for (std::size_t k = 0; k < histogram.size(); ++k)
    aggregate.gather_time_histogram[k] = histogram[k].as_uint();
  aggregate.min_diameter_floor = json.at("min_diameter_floor").as_number();
  aggregate.funnel_runs = json.at("funnel_runs").as_uint();
  aggregate.funnel_gathered = json.at("funnel_gathered").as_uint();
  return aggregate;
}

Json GatherAggregate::to_json() const {
  Json json = Json::object();
  for (const gather::StopPolicy policy :
       {gather::StopPolicy::FirstSight, gather::StopPolicy::AllVisible}) {
    const PolicyAggregate& aggregate = slice(policy);
    if (aggregate.runs > 0) json.set(gather::to_string(policy), aggregate.to_json());
  }
  return json;
}

GatherAggregate GatherAggregate::from_json(const Json& json) {
  GatherAggregate aggregate;
  for (const gather::StopPolicy policy :
       {gather::StopPolicy::FirstSight, gather::StopPolicy::AllVisible}) {
    if (const Json* slice_json = json.find(gather::to_string(policy)))
      aggregate.slice(policy) = PolicyAggregate::from_json(*slice_json);
  }
  return aggregate;
}

}  // namespace aurv::gatherx
