#include "gatherx/scenario.hpp"

#include <stdexcept>

#include "exp/registry.hpp"
#include "exp/spec_util.hpp"
#include "support/check.hpp"

namespace aurv::gatherx {

using exp::check_keys;
using exp::rational_from;
using exp::rational_to;
using support::Json;

namespace {

agents::GatherSamplerRanges ranges_from(const Json& json) {
  check_keys(json,
             {"n_min", "n_max", "r_min", "r_max", "spread_min", "spread_max", "wake_max"},
             "source.ranges");
  agents::GatherSamplerRanges ranges;
  ranges.n_min = static_cast<std::uint32_t>(json.uint_or("n_min", ranges.n_min));
  ranges.n_max = static_cast<std::uint32_t>(json.uint_or("n_max", ranges.n_max));
  ranges.r_min = json.number_or("r_min", ranges.r_min);
  ranges.r_max = json.number_or("r_max", ranges.r_max);
  ranges.spread_min = json.number_or("spread_min", ranges.spread_min);
  ranges.spread_max = json.number_or("spread_max", ranges.spread_max);
  ranges.wake_max = json.number_or("wake_max", ranges.wake_max);
  if (ranges.n_min < 1) throw std::invalid_argument("gather scenario: n_min must be >= 1");
  if (ranges.n_max < ranges.n_min)
    throw std::invalid_argument("gather scenario: n_max must be >= n_min");
  if (!(ranges.r_min > 0.0) || ranges.r_max < ranges.r_min)
    throw std::invalid_argument("gather scenario: need 0 < r_min <= r_max");
  if (ranges.spread_max < ranges.spread_min)
    throw std::invalid_argument("gather scenario: spread_max must be >= spread_min");
  if (ranges.wake_max < 0.0)
    throw std::invalid_argument("gather scenario: wake_max must be >= 0");
  return ranges;
}

Json ranges_to(const agents::GatherSamplerRanges& ranges) {
  Json json = Json::object();
  json.set("n_min", Json(static_cast<std::uint64_t>(ranges.n_min)));
  json.set("n_max", Json(static_cast<std::uint64_t>(ranges.n_max)));
  json.set("r_min", Json(ranges.r_min));
  json.set("r_max", Json(ranges.r_max));
  json.set("spread_min", Json(ranges.spread_min));
  json.set("spread_max", Json(ranges.spread_max));
  json.set("wake_max", Json(ranges.wake_max));
  return json;
}

}  // namespace

std::uint64_t GatherScenarioSpec::total_jobs() const {
  AURV_CHECK_MSG(replications == 0 || count <= UINT64_MAX / replications,
                 "gather scenario: count x replications overflows");
  return count * replications;
}

gather::GatherConfig GatherScenarioSpec::engine_config(gather::StopPolicy policy,
                                                       std::size_t n, double r) const {
  gather::GatherConfig config;
  config.r = r;
  config.policy = policy;
  config.success_diameter =
      success_diameter ? *success_diameter : gather::default_success_diameter(policy, n, r);
  config.contact_slack = contact_slack;
  config.max_events = max_events;
  config.horizon = horizon;
  return config;
}

GatherScenarioSpec GatherScenarioSpec::from_json(const Json& json) {
  check_keys(json,
             {"schema", "kind", "name", "description", "algorithm", "seed", "replications",
              "policies", "source", "engine"},
             "gather scenario");
  const std::uint64_t schema = json.uint_or("schema", 1);
  if (schema != 1)
    throw std::invalid_argument("gather scenario: unsupported schema " +
                                std::to_string(schema));
  if (json.string_or("kind", "") != "gather-census")
    throw std::invalid_argument("gather scenario: \"kind\" must be \"gather-census\"");

  GatherScenarioSpec spec;
  spec.name = json.string_or("name", "");
  spec.description = json.string_or("description", "");
  spec.algorithm = json.string_or("algorithm", "latecomers");
  spec.seed = json.uint_or("seed", 0);
  spec.replications = json.uint_or("replications", 1);
  if (spec.replications == 0)
    throw std::invalid_argument("gather scenario: replications must be >= 1");

  if (const Json* policies = json.find("policies")) {
    spec.policies.clear();
    for (const Json& entry : policies->as_array())
      spec.policies.push_back(gather::policy_from_string(entry.as_string()));
    if (spec.policies.empty())
      throw std::invalid_argument("gather scenario: policies must not be empty");
    for (std::size_t i = 0; i < spec.policies.size(); ++i)
      for (std::size_t j = i + 1; j < spec.policies.size(); ++j)
        if (spec.policies[i] == spec.policies[j])
          throw std::invalid_argument("gather scenario: duplicate policy \"" +
                                      gather::to_string(spec.policies[i]) + "\"");
  }

  const Json& source = json.at("source");
  check_keys(source, {"sampler", "count", "ranges"}, "source");
  spec.sampler = source.at("sampler").as_string();
  spec.count = source.at("count").as_uint();
  if (spec.count == 0)
    throw std::invalid_argument("gather scenario: source.count must be >= 1");
  if (const Json* ranges = source.find("ranges")) spec.ranges = ranges_from(*ranges);

  if (const Json* engine = json.find("engine")) {
    check_keys(*engine, {"max_events", "contact_slack", "horizon", "success_diameter"},
               "engine");
    spec.max_events = engine->uint_or("max_events", spec.max_events);
    spec.contact_slack = engine->number_or("contact_slack", spec.contact_slack);
    if (const Json* horizon = engine->find("horizon");
        horizon != nullptr && !horizon->is_null())
      spec.horizon = rational_from(*horizon, "horizon");
    if (const Json* diameter = engine->find("success_diameter");
        diameter != nullptr && !diameter->is_null()) {
      spec.success_diameter = diameter->as_number();
      if (!(*spec.success_diameter > 0.0))
        throw std::invalid_argument("gather scenario: success_diameter must be positive");
    }
  }

  // Fail at load time, not at job 0: the sampler must resolve and the
  // algorithm must be a common (instance-blind) program.
  (void)exp::resolve_gather_sampler(spec.sampler);
  (void)exp::resolve_common_algorithm(spec.algorithm);
  return spec;
}

Json GatherScenarioSpec::to_json() const {
  Json json = Json::object();
  json.set("schema", Json(std::uint64_t{1}));
  json.set("kind", Json("gather-census"));
  json.set("name", Json(name));
  if (!description.empty()) json.set("description", Json(description));
  json.set("algorithm", Json(algorithm));
  json.set("seed", Json(seed));
  json.set("replications", Json(replications));
  Json policies_json = Json::array();
  for (const gather::StopPolicy policy : policies)
    policies_json.push_back(Json(gather::to_string(policy)));
  json.set("policies", std::move(policies_json));
  Json source = Json::object();
  source.set("sampler", Json(sampler));
  source.set("count", Json(count));
  source.set("ranges", ranges_to(ranges));
  json.set("source", std::move(source));
  Json engine = Json::object();
  engine.set("max_events", Json(max_events));
  engine.set("contact_slack", Json(contact_slack));
  if (horizon) engine.set("horizon", rational_to(*horizon));
  if (success_diameter) engine.set("success_diameter", Json(*success_diameter));
  json.set("engine", std::move(engine));
  return json;
}

GatherScenarioSpec GatherScenarioSpec::load(const std::string& path) {
  try {
    return from_json(Json::load_file(path));
  } catch (const std::exception& error) {
    throw std::invalid_argument(path + ": " + error.what());
  }
}

void GatherScenarioSpec::save(const std::string& path) const { to_json().save_file(path); }

std::uint64_t GatherScenarioSpec::fingerprint() const {
  return exp::fnv1a_fingerprint(to_json());
}

}  // namespace aurv::gatherx
