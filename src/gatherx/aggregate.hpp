// Streaming gathering-census statistics: what TAB-7 reports about a
// population of n-agent runs, in O(1) memory per shard and bit-identical at
// any thread count (the census runner adds in job order within a shard and
// merges in shard order, exactly like the two-agent CampaignAggregate).
//
// One PolicyAggregate per configured stop policy: gathering under
// FirstSight (accreting chains) and AllVisible (simultaneous visibility)
// are different experiments on the same configuration population, so the
// census keeps their populations separate and the summary reports the
// per-stop-policy breakdown side by side.
#pragma once

#include <array>
#include <cstdint>

#include "exp/aggregate.hpp"
#include "gather/engine.hpp"
#include "support/json.hpp"

namespace aurv::gatherx {

struct PolicyAggregate {
  /// Same log2 bucketing as the two-agent meet-time histogram (bucket k
  /// covers [2^(k-16), 2^(k-15)), clamped) — shared via exp::meet_time_bucket
  /// so gather and meet percentiles read on one scale.
  static constexpr int kHistogramBuckets = exp::CampaignAggregate::kHistogramBuckets;

  std::uint64_t runs = 0;
  std::uint64_t gathered = 0;
  /// Indexed by gather::GatherStop.
  std::array<std::uint64_t, 4> stop_reasons{};

  std::uint64_t total_events = 0;
  std::uint64_t max_events = 0;

  double gather_time_sum = 0.0;
  double gather_time_min = 0.0;  ///< valid when gathered > 0
  double gather_time_max = 0.0;
  std::array<std::uint64_t, kHistogramBuckets> gather_time_histogram{};

  /// min over all runs of the run's smallest observed configuration
  /// diameter — the floor of the max pairwise distance: how close the
  /// never-gathering runs came. Valid when runs > 0.
  double min_diameter_floor = 0.0;

  /// The [38] "good configuration" predicate cross-tab: how many runs the
  /// funnel predicate accepted, and how many of those actually gathered —
  /// the census-scale version of TAB-7's funnel? column.
  std::uint64_t funnel_runs = 0;
  std::uint64_t funnel_gathered = 0;

  void add(const gather::GatherResult& result, bool funnel);

  /// Associative combine; the census runner always calls this left-to-right
  /// in shard order, which is what makes double sums reproducible.
  void merge(const PolicyAggregate& other);

  /// Gather-time percentile from the histogram: upper edge of the bucket
  /// containing the p-quantile rank among gathered runs (0 when none).
  [[nodiscard]] double gather_time_percentile(double p) const;

  [[nodiscard]] double gather_rate() const {
    return runs == 0 ? 0.0 : static_cast<double>(gathered) / static_cast<double>(runs);
  }

  /// Lossless round-trip (doubles serialized exactly) — the checkpoint
  /// format. to_json also embeds derived convenience fields (gather_rate,
  /// p50/p95/p99) which from_json ignores.
  [[nodiscard]] support::Json to_json() const;
  [[nodiscard]] static PolicyAggregate from_json(const support::Json& json);

  friend bool operator==(const PolicyAggregate& a, const PolicyAggregate& b) = default;
};

struct GatherAggregate {
  PolicyAggregate first_sight;
  PolicyAggregate all_visible;

  [[nodiscard]] PolicyAggregate& slice(gather::StopPolicy policy) {
    return policy == gather::StopPolicy::FirstSight ? first_sight : all_visible;
  }
  [[nodiscard]] const PolicyAggregate& slice(gather::StopPolicy policy) const {
    return policy == gather::StopPolicy::FirstSight ? first_sight : all_visible;
  }

  void add(gather::StopPolicy policy, const gather::GatherResult& result, bool funnel) {
    slice(policy).add(result, funnel);
  }
  void merge(const GatherAggregate& other) {
    first_sight.merge(other.first_sight);
    all_visible.merge(other.all_visible);
  }

  /// Object keyed by policy name; policies the census never ran (empty
  /// slices) are omitted, so a single-policy census reads cleanly.
  [[nodiscard]] support::Json to_json() const;
  [[nodiscard]] static GatherAggregate from_json(const support::Json& json);

  friend bool operator==(const GatherAggregate& a, const GatherAggregate& b) = default;
};

}  // namespace aurv::gatherx
