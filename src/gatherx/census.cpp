#include "gatherx/census.hpp"

#include <random>
#include <vector>

#include "exp/registry.hpp"
#include "exp/stream_runner.hpp"
#include "support/check.hpp"

namespace aurv::gatherx {

using support::Json;

namespace {

/// One line per job, compact JSON: the configuration's shape plus one
/// sub-object per configured policy, numbers exactly as in the summary.
std::string jsonl_record(const GatherScenarioSpec& spec, std::uint64_t job,
                         const agents::GatherInstance& instance, bool funnel,
                         const std::vector<gather::GatherResult>& results) {
  Json record = Json::object();
  record.set("job", Json(job));
  record.set("n", Json(static_cast<std::uint64_t>(instance.n())));
  record.set("r", Json(instance.r));
  record.set("funnel", Json(funnel));
  for (std::size_t k = 0; k < spec.policies.size(); ++k) {
    const gather::GatherResult& result = results[k];
    Json entry = Json::object();
    entry.set("gathered", Json(result.gathered));
    entry.set("reason", Json(gather::to_string(result.reason)));
    if (result.gathered) entry.set("gather_time", Json(result.gather_time));
    entry.set("events", Json(result.events));
    entry.set("min_diameter", Json(result.min_diameter_seen));
    entry.set("final_diameter", Json(result.final_diameter));
    record.set(gather::to_string(spec.policies[k]), std::move(entry));
  }
  return record.dump() + "\n";
}

}  // namespace

agents::GatherInstance census_instance(const GatherScenarioSpec& spec, std::uint64_t job) {
  AURV_CHECK_MSG(job < spec.total_jobs(), "census_instance: job out of range");
  const std::uint64_t sample = job / spec.replications;
  static thread_local std::string cached_sampler_name;
  static thread_local exp::GatherSamplerFn cached_sampler;
  if (cached_sampler_name != spec.sampler) {
    cached_sampler = exp::resolve_gather_sampler(spec.sampler);
    cached_sampler_name = spec.sampler;
  }
  // One independent, reproducible stream per sample: seeded by (census
  // seed, sample index), never by anything execution-order dependent.
  std::seed_seq seq{static_cast<std::uint32_t>(spec.seed),
                    static_cast<std::uint32_t>(spec.seed >> 32),
                    static_cast<std::uint32_t>(sample),
                    static_cast<std::uint32_t>(sample >> 32)};
  std::mt19937_64 rng(seq);
  return cached_sampler(rng, spec.ranges);
}

Json CensusResult::summary(const GatherScenarioSpec& spec) const {
  Json json = Json::object();
  json.set("schema", Json(std::uint64_t{1}));
  json.set("kind", Json("gather-census-summary"));
  json.set("scenario", spec.to_json());
  json.set("jobs", Json(jobs));
  json.set("complete", Json(complete));
  json.set("aggregate", aggregate.to_json());
  return json;
}

CensusResult run_census(const GatherScenarioSpec& spec, const CensusOptions& options) {
  // One common program for every agent of every run (instance-blind by the
  // registry contract; shared across shards like the search objective).
  const sim::AlgorithmFactory factory = exp::resolve_common_algorithm(spec.algorithm);

  exp::StreamRunResult<GatherAggregate> stream =
      exp::run_checkpointed_stream<GatherAggregate>(
          "gather-census-checkpoint", spec.fingerprint(), spec.total_jobs(), options,
          [&](std::uint64_t job, GatherAggregate& aggregate, std::string* jsonl) {
            const agents::GatherInstance instance = census_instance(spec, job);
            // n = 1 has no pairs; a lone agent is vacuously a good
            // configuration.
            const bool funnel = instance.n() < 2 ||
                                gather::is_funnel_configuration(instance.agents, instance.r);
            std::vector<gather::GatherResult> runs(spec.policies.size());
            for (std::size_t k = 0; k < spec.policies.size(); ++k) {
              const gather::GatherConfig config =
                  spec.engine_config(spec.policies[k], instance.n(), instance.r);
              runs[k] = gather::GatherEngine(instance.agents, config).run(factory);
              aggregate.add(spec.policies[k], runs[k], funnel);
            }
            if (jsonl != nullptr) *jsonl += jsonl_record(spec, job, instance, funnel, runs);
          });

  CensusResult result;
  result.aggregate = std::move(stream.aggregate);
  result.jobs = stream.jobs;
  result.jobs_run = stream.jobs_run;
  result.resumed_shards = stream.resumed_shards;
  result.complete = stream.complete;
  return result;
}

}  // namespace aurv::gatherx
