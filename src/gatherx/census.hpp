// CensusDriver — executes a GatherScenarioSpec: a chunked work-queue of
// lazily generated n-agent configurations feeding streaming per-policy
// aggregators, merged deterministically in shard order. The gathering
// counterpart of exp::run_campaign, with the same reproducibility contract:
//
//   * job j's configuration is regenerated on demand from
//     std::seed_seq{seed, j / replications} — independent of execution
//     order and thread count;
//   * each job runs once per configured stop policy (FirstSight and
//     AllVisible are different experiments on one population);
//   * shards are merged/flushed strictly in shard order via
//     support::run_sharded, so the summary (including its floating-point
//     sums), the JSONL stream and every checkpoint are bit-identical at
//     any --threads / --max-shards value;
//   * checkpoints pin the spec fingerprint and the JSONL byte offset;
//     resuming lands on the same summary as an uninterrupted run.
#pragma once

#include <cstdint>

#include "agents/gather_sampler.hpp"
#include "exp/runner.hpp"
#include "gatherx/aggregate.hpp"
#include "gatherx/scenario.hpp"
#include "support/json.hpp"

namespace aurv::gatherx {

/// Invocation knobs are identical to the campaign runner's (threads,
/// shard_size, jsonl/checkpoint paths, resume, max_shards, progress) — one
/// vocabulary for both sweep kinds, and aurv_sweep parses one flag set.
using CensusOptions = exp::CampaignOptions;

struct CensusResult {
  GatherAggregate aggregate;
  std::uint64_t jobs = 0;            ///< total jobs in the census
  std::uint64_t jobs_run = 0;        ///< jobs executed by this invocation
  std::uint64_t resumed_shards = 0;  ///< completed-shard prefix from a checkpoint
  bool complete = true;              ///< false when max_shards stopped the run early

  /// The summary artifact. Depends only on (spec, aggregate, complete) —
  /// not on thread count, timing, or checkpoint/resume splits.
  [[nodiscard]] support::Json summary(const GatherScenarioSpec& spec) const;
};

/// The configuration job `j` runs on (exposed for tests and the CLI's
/// `describe`; the runner generates configurations lazily with this exact
/// function, which is what makes replays and resumes line up).
[[nodiscard]] agents::GatherInstance census_instance(const GatherScenarioSpec& spec,
                                                     std::uint64_t job);

/// Runs (or resumes) the census described by `spec`. Throws
/// std::invalid_argument for spec/option/checkpoint mismatches and
/// support::JsonError for unreadable artifacts; exceptions from simulation
/// jobs propagate with deterministic first-in-job-order semantics.
[[nodiscard]] CensusResult run_census(const GatherScenarioSpec& spec,
                                      const CensusOptions& options = {});

}  // namespace aurv::gatherx
