#include "gather/engine.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

#include "geom/closest_approach.hpp"
#include "numeric/filter.hpp"
#include "support/check.hpp"

namespace aurv::gather {

namespace {

using numeric::Rational;

/// Execution state of one agent. The restricted model (shifted frames,
/// unit clock and speed) makes this simpler than the two-agent engine's
/// state: local time is absolute time minus the wake-up, headings are
/// absolute, one length unit is one absolute unit.
struct AgentState {
  AgentState(GatherAgent parameters, program::Program stream_in)
      : stream(std::move(stream_in)), seg_start_pos(parameters.start) {
    seg_end_pos = seg_start_pos;
    if (parameters.wake.sign() > 0) {
      seg_end = parameters.wake;  // pre-wake sleep segment
    } else {
      next_instruction();
    }
  }

  [[nodiscard]] geom::Vec2 position_at(const Rational& time) const {
    if (velocity.x == 0.0 && velocity.y == 0.0) return seg_start_pos;
    const double dt = (time - seg_start).to_double();
    return seg_start_pos + dt * velocity;
  }

  void next_instruction() {
    if (frozen || exhausted) return;
    if (!stream.next()) {
      exhausted = true;
      seg_end.reset();
      velocity = {};
      seg_end_pos = seg_start_pos;
      return;
    }
    const program::Instruction& instruction = stream.value();
    ++instructions;
    seg_end = seg_start + program::duration_of(instruction);
    if (const auto* move = std::get_if<program::Go>(&instruction)) {
      if (move->distance.is_zero()) {
        velocity = {};
        seg_end_pos = seg_start_pos;
      } else {
        const geom::Vec2 direction = geom::unit_vector(move->heading);
        velocity = direction;  // unit speed
        seg_end_pos = seg_start_pos + move->distance.to_double() * direction;
      }
    } else {
      velocity = {};
      seg_end_pos = seg_start_pos;
    }
  }

  void advance_segment() {
    AURV_CHECK(seg_end.has_value());
    seg_start = *seg_end;
    seg_start_pos = seg_end_pos;
    velocity = {};
    seg_end.reset();
    next_instruction();
  }

  void freeze_at(const Rational& time) {
    seg_start_pos = position_at(time);
    seg_start = time;
    seg_end.reset();
    seg_end_pos = seg_start_pos;
    velocity = {};
    frozen = true;
  }

  [[nodiscard]] bool stopped() const noexcept { return frozen || (exhausted && !seg_end); }

  program::Program stream;
  Rational seg_start = 0;
  std::optional<Rational> seg_end;
  geom::Vec2 seg_start_pos;
  geom::Vec2 seg_end_pos;
  geom::Vec2 velocity;
  std::uint64_t instructions = 0;
  bool frozen = false;
  bool exhausted = false;
};

double diameter_at(const std::vector<AgentState>& states, const Rational& time) {
  double widest = 0.0;
  for (std::size_t i = 0; i < states.size(); ++i) {
    const geom::Vec2 pi = states[i].position_at(time);
    for (std::size_t j = i + 1; j < states.size(); ++j) {
      widest = std::max(widest, geom::dist(pi, states[j].position_at(time)));
    }
  }
  return widest;
}

}  // namespace

std::string to_string(StopPolicy policy) {
  return policy == StopPolicy::FirstSight ? "first-sight" : "all-visible";
}

StopPolicy policy_from_string(const std::string& name) {
  if (name == "first-sight") return StopPolicy::FirstSight;
  if (name == "all-visible") return StopPolicy::AllVisible;
  throw std::invalid_argument("gather: unknown stop policy \"" + name +
                              "\"; known: first-sight, all-visible");
}

std::string to_string(GatherStop reason) {
  switch (reason) {
    case GatherStop::Gathered: return "gathered";
    case GatherStop::AllIdleApart: return "all-idle-apart";
    case GatherStop::FuelExhausted: return "fuel-exhausted";
    case GatherStop::HorizonReached: return "horizon-reached";
  }
  return "unknown";
}

double default_success_diameter(StopPolicy policy, std::size_t n, double r) {
  if (policy == StopPolicy::AllVisible || n <= 1) return r;
  return static_cast<double>(n - 1) * r + 1e-6;
}

bool is_funnel_configuration(const std::vector<GatherAgent>& agents, double r) {
  AURV_CHECK_MSG(agents.size() >= 2, "is_funnel_configuration: need >= 2 agents");
  std::size_t earliest = 0;
  for (std::size_t k = 1; k < agents.size(); ++k) {
    if (agents[k].wake < agents[earliest].wake) earliest = k;
  }
  for (std::size_t k = 0; k < agents.size(); ++k) {
    if (k == earliest) continue;
    const double delay = (agents[k].wake - agents[earliest].wake).to_double();
    if (delay <= geom::dist(agents[k].start, agents[earliest].start) - r) return false;
  }
  return true;
}

GatherEngine::GatherEngine(std::vector<GatherAgent> agents, GatherConfig config)
    : agents_(std::move(agents)), config_(std::move(config)) {
  AURV_CHECK_MSG(!agents_.empty(), "GatherEngine: need at least one agent");
  AURV_CHECK_MSG(config_.r > 0.0, "GatherEngine: r must be positive");
  for (const GatherAgent& agent : agents_) {
    AURV_CHECK_MSG(agent.wake.sign() >= 0, "GatherEngine: wake times must be nonnegative");
  }
}

GatherResult GatherEngine::run(const sim::AlgorithmFactory& factory) const {
  std::vector<AgentState> states;
  states.reserve(agents_.size());
  for (const GatherAgent& agent : agents_) states.emplace_back(agent, factory());
  const std::size_t n = states.size();

  const double r_sight = config_.r + config_.contact_slack;
  const double target =
      config_.success_diameter.value_or(config_.r) + config_.contact_slack;

  GatherResult result;
  result.min_diameter_seen = std::numeric_limits<double>::infinity();
  Rational now = 0;

  // n = 1 is trivially gathered: the configuration's diameter is 0 from the
  // start, under either stop policy. (The simulation loop below would agree,
  // but only after running the lone agent's program to exhaustion.)
  if (n == 1) {
    states.front().freeze_at(now);
    result.min_diameter_seen = 0.0;
    result.reason = GatherStop::Gathered;
    result.gathered = true;
    result.positions.push_back(states.front().position_at(now));
    result.frozen.push_back(true);
    return result;
  }

  const auto finish = [&](GatherStop reason, const Rational& time) {
    result.reason = reason;
    result.gathered = reason == GatherStop::Gathered;
    result.gather_time = time.to_double();
    result.positions.clear();
    result.frozen.clear();
    for (const AgentState& state : states) {
      result.positions.push_back(state.position_at(time));
      result.frozen.push_back(state.frozen);
    }
    result.final_diameter = diameter_at(states, time);
    result.min_diameter_seen = std::min(result.min_diameter_seen, result.final_diameter);
    // The contact solves above ran through the filtered kernel; drain the
    // tier-traffic counts at the run's deterministic end so filter.* totals
    // stay thread-count-invariant like every other series.
    numeric::flush_filter_stats();
    return result;
  };

  while (true) {
    if (result.events >= config_.max_events) return finish(GatherStop::FuelExhausted, now);
    result.min_diameter_seen = std::min(result.min_diameter_seen, diameter_at(states, now));

    // FirstSight: freeze every unfrozen agent that currently sees someone.
    // The extra 1e-9 absorbs the round-off of landing exactly on a contact
    // root computed in double (otherwise the loop could creep toward it).
    if (config_.policy == StopPolicy::FirstSight) {
      const double r_freeze = r_sight + 1e-9;
      bool froze_any = false;
      for (std::size_t i = 0; i < n; ++i) {
        if (states[i].frozen) continue;
        for (std::size_t j = 0; j < n; ++j) {
          if (j == i) continue;
          if (geom::dist(states[i].position_at(now), states[j].position_at(now)) <= r_freeze) {
            states[i].freeze_at(now);
            froze_any = true;
            ++result.events;
            break;
          }
        }
      }
      if (froze_any) continue;  // velocities changed; recompute the window
    }

    // Termination: everyone stopped (frozen or program over).
    const bool all_stopped = std::all_of(states.begin(), states.end(),
                                         [](const AgentState& s) { return s.stopped(); });
    if (all_stopped) {
      return finish(diameter_at(states, now) <= target ? GatherStop::Gathered
                                                       : GatherStop::AllIdleApart,
                    now);
    }

    // Window end: earliest segment boundary, possibly clipped by horizon.
    std::optional<Rational> window_end;
    for (const AgentState& state : states) {
      if (state.seg_end && (!window_end || *state.seg_end < *window_end))
        window_end = state.seg_end;
    }
    AURV_CHECK(window_end.has_value());  // not all stopped, so someone has a segment
    bool at_horizon = false;
    if (config_.horizon && *window_end >= *config_.horizon) {
      window_end = config_.horizon;
      at_horizon = true;
    }
    const double window = (*window_end - now).to_double();

    if (config_.policy == StopPolicy::FirstSight) {
      // Earliest strictly-future pairwise contact involving a moving pair.
      double earliest = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) {
          if (states[i].frozen && states[j].frozen) continue;
          const geom::Vec2 offset =
              states[i].position_at(now) - states[j].position_at(now);
          const geom::Vec2 relative = states[i].velocity - states[j].velocity;
          const std::optional<double> hit =
              geom::first_contact(offset, relative, r_sight, window);
          if (hit && *hit > 0.0) earliest = std::min(earliest, *hit);
        }
      }
      if (earliest < window) {
        now += Rational::from_double(earliest);
        continue;  // the freeze pass at the loop head handles it
      }
    } else {
      // AllVisible: earliest instant in the window when *every* pair is
      // simultaneously within r — the intersection of the pairs' contact
      // intervals.
      double lo = 0.0;
      double hi = window;
      bool possible = true;
      for (std::size_t i = 0; i < n && possible; ++i) {
        for (std::size_t j = i + 1; j < n && possible; ++j) {
          const geom::Vec2 offset =
              states[i].position_at(now) - states[j].position_at(now);
          const geom::Vec2 relative = states[i].velocity - states[j].velocity;
          const std::optional<geom::ContactInterval> interval =
              geom::contact_interval(offset, relative, r_sight, window);
          if (!interval) {
            possible = false;
          } else {
            lo = std::max(lo, interval->enter);
            hi = std::min(hi, interval->exit);
          }
        }
      }
      if (possible && lo <= hi) {
        Rational gather_time = now + Rational::from_double(lo);
        if (gather_time > *window_end) gather_time = *window_end;
        for (AgentState& state : states) state.freeze_at(gather_time);
        return finish(GatherStop::Gathered, gather_time);
      }
    }

    if (at_horizon) return finish(GatherStop::HorizonReached, *window_end);

    now = *window_end;
    for (AgentState& state : states) {
      if (state.seg_end && *state.seg_end == now) {
        state.advance_segment();
        ++result.events;
      }
    }
  }
}

}  // namespace aurv::gather
