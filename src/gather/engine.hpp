// Multi-agent gathering engine — an executable exploration of the paper's
// concluding open problem ("generalize the rendezvous task to gathering
// many agents"), in the restricted model of [38] that the paper's
// Latecomers procedure comes from: n >= 2 anonymous agents whose coordinate
// systems are *shifts* of one another (same compass, chirality, clock rate
// and speed), each with its own starting position and wake-up time, all
// running the same deterministic mobility program.
//
// The two-agent rendezvous rule ("stop forever when you see the other
// agent") has two natural n-agent generalizations, both implemented:
//
//   * StopPolicy::FirstSight — an agent freezes the first time *any* other
//     agent is within the visibility radius r. Clusters then accrete:
//     later agents walk into frozen groups. The group ends with diameter
//     up to (n-1) * r (a chain), so success is parameterized by a target
//     diameter.
//   * StopPolicy::AllVisible — an agent freezes only when *all* n-1 others
//     are within r (agents know n). Equivalently everybody freezes at the
//     first instant the configuration's diameter drops to r. For n = 2
//     both policies coincide with the paper's rendezvous rule.
//
// This engine makes no correctness claim for any particular gathering
// algorithm (we do not have [38]'s GATHER(n) construction); TAB-7 maps
// empirically which configurations our Latecomers gathers under each
// policy. See DESIGN.md "Substituted components".
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "geom/vec2.hpp"
#include "numeric/rational.hpp"
#include "sim/engine.hpp"

namespace aurv::gather {

/// One agent of the restricted model: a starting position (absolute
/// coordinates; the agent's private origin) and a wake-up time.
struct GatherAgent {
  geom::Vec2 start;
  numeric::Rational wake = 0;
};

enum class StopPolicy : std::uint8_t { FirstSight, AllVisible };

[[nodiscard]] std::string to_string(StopPolicy policy);
/// Inverse of to_string ("first-sight" / "all-visible"); throws
/// std::invalid_argument naming the known spellings otherwise.
[[nodiscard]] StopPolicy policy_from_string(const std::string& name);

struct GatherConfig {
  double r = 1.0;                      ///< visibility radius (common)
  StopPolicy policy = StopPolicy::AllVisible;
  /// Success diameter: the run succeeds at the first instant every pairwise
  /// distance is <= success_diameter *and* every agent has stopped.
  /// Defaults to r (the AllVisible natural target); FirstSight chains
  /// typically need (n-1) * r.
  std::optional<double> success_diameter;
  double contact_slack = 1e-9;
  std::uint64_t max_events = 4'000'000;
  std::optional<numeric::Rational> horizon;
};

enum class GatherStop : std::uint8_t {
  Gathered,       ///< all agents stopped within the success diameter
  AllIdleApart,   ///< everyone stopped/exhausted but the diameter is too big
  FuelExhausted,
  HorizonReached,
};

[[nodiscard]] std::string to_string(GatherStop reason);

struct GatherResult {
  bool gathered = false;
  GatherStop reason = GatherStop::FuelExhausted;
  double gather_time = 0.0;            ///< double view of the stop time
  double final_diameter = 0.0;         ///< max pairwise distance at stop
  std::vector<geom::Vec2> positions;   ///< agent positions at stop
  std::vector<bool> frozen;            ///< which agents had stopped
  std::uint64_t events = 0;
  /// Smallest configuration diameter observed at any event boundary
  /// (sampled diagnostic, not a continuous minimum).
  double min_diameter_seen = 0.0;
};

class GatherEngine {
 public:
  /// Requires at least one agent and positive r (checked). A single agent
  /// is trivially gathered (diameter 0) at time 0 under either policy.
  GatherEngine(std::vector<GatherAgent> agents, GatherConfig config);

  /// Runs the common program produced by `factory` on every agent.
  [[nodiscard]] GatherResult run(const sim::AlgorithmFactory& factory) const;

  [[nodiscard]] std::size_t agent_count() const noexcept { return agents_.size(); }

 private:
  std::vector<GatherAgent> agents_;
  GatherConfig config_;
};

/// The policy-natural success diameter when a config does not pin one:
/// AllVisible targets r (everyone mutually visible); FirstSight accretes
/// chains of up to n - 1 hops, so it targets (n - 1) * r plus a small
/// absolute slack absorbing the per-freeze contact round-off. The census
/// driver and the max-gather-time search objective share this default, so
/// "gathered" means the same thing in both pipelines.
[[nodiscard]] double default_success_diameter(StopPolicy policy, std::size_t n, double r);

/// The sufficient "good configuration" condition of [38] specialized to two
/// agents is t > dist - r relative to the earliest agent; this predicate is
/// its natural n-agent analogue (every agent is a late-enough comer w.r.t.
/// the earliest one). TAB-7 tests how predictive it is for our Latecomers
/// under each stop policy.
[[nodiscard]] bool is_funnel_configuration(const std::vector<GatherAgent>& agents, double r);

}  // namespace aurv::gather
