#include "core/almost_universal.hpp"

#include <utility>
#include <vector>

#include "algo/boundary.hpp"
#include "algo/cgkk.hpp"
#include "algo/cow_walk.hpp"
#include "algo/latecomers.hpp"
#include "algo/wait_and_search.hpp"
#include "core/feasibility.hpp"
#include "geom/angle.hpp"
#include "program/combinators.hpp"
#include "support/check.hpp"

namespace aurv::core {

using numeric::Rational;
using program::Instruction;
using program::Program;

namespace {

// Instruction-count guard for the materialized pieces of blocks 2 and 4.
// The prefix of Latecomers/CGKK of local duration 2^i has O(4^i) short
// instructions; phases reachable within any simulator fuel budget stay far
// below this cap.
constexpr std::size_t kMaterializeCap = 200'000'000;

std::vector<Instruction> block1(std::uint32_t i) {
  std::vector<Instruction> result;
  const std::uint64_t epochs = std::uint64_t{1} << (i + 1);  // 2^(i+1)
  for (std::uint64_t j = 1; j <= epochs; ++j) {
    // PlanarCowWalk(i) "in the coordinate system Rot(j*pi/2^i)".
    const double alpha = geom::dyadic_angle(static_cast<std::int64_t>(j), i);
    for (const Instruction& instruction : algo::planar_cow_walk(i)) {
      if (const auto* move = std::get_if<program::Go>(&instruction)) {
        result.push_back(Instruction{program::Go{move->heading + alpha, move->distance}});
      } else {
        result.push_back(instruction);
      }
    }
  }
  return result;
}

std::vector<Instruction> block2(std::uint32_t i) {
  std::vector<Instruction> result;
  result.push_back(program::wait(Rational::pow2(i)));                       // line 9
  std::vector<Instruction> prefix =
      program::take_duration_capped(algo::latecomers(), Rational::pow2(i),  // line 10
                                    kMaterializeCap);
  std::vector<Instruction> back = program::backtrack_moves(prefix);         // lines 11-12
  result.insert(result.end(), std::make_move_iterator(prefix.begin()),
                std::make_move_iterator(prefix.end()));
  result.insert(result.end(), std::make_move_iterator(back.begin()),
                std::make_move_iterator(back.end()));
  return result;
}

std::vector<Instruction> block3(std::uint32_t i) {
  std::vector<Instruction> result;
  result.push_back(program::wait(algo::wait_and_search_pause(i)));  // line 14: 2^(15 i^2)
  for (const Instruction& instruction : algo::planar_cow_walk(i)) { // line 15
    result.push_back(instruction);
  }
  return result;
}

std::vector<Instruction> block4(std::uint32_t i) {
  // Line 17: the solo execution of CGKK during time 2^i, S_1 ... S_{2^(2i)},
  // each segment taking time 1/2^i. Line 18: S_1 wait(2^i) ... S_{2^(2i)}
  // wait(2^i). Lines 19-20: backtrack on the path followed.
  const std::vector<Instruction> solo =
      program::take_duration_capped(algo::cgkk(), Rational::pow2(i), kMaterializeCap);
  std::vector<Instruction> result = program::segmented_with_waits(
      solo, Rational::dyadic(1, i), Rational::pow2(i));
  std::vector<Instruction> back = program::backtrack_moves(result);
  result.insert(result.end(), std::make_move_iterator(back.begin()),
                std::make_move_iterator(back.end()));
  return result;
}

}  // namespace

namespace {

Program almost_universal_rv_impl(unsigned block_mask) {
  for (std::uint32_t i = 1;; ++i) {
    AURV_CHECK_MSG(i <= algo::kMaxCowWalkIndex, "almost_universal_rv: phase index overflow");
    for (int block = 1; block <= 4; ++block) {
      if ((block_mask & (1u << (block - 1))) == 0) continue;
      const std::vector<Instruction> instructions = aurv_phase_block(i, block);
      for (const Instruction& instruction : instructions) co_yield instruction;
    }
  }
}

}  // namespace

Program almost_universal_rv() { return almost_universal_rv_impl(0b1111u); }

Program almost_universal_rv_blocks(unsigned block_mask) {
  AURV_CHECK_MSG(block_mask != 0 && block_mask <= 0b1111u,
                 "almost_universal_rv_blocks: mask must select at least one of blocks 1..4");
  return almost_universal_rv_impl(block_mask);
}

std::vector<Instruction> aurv_phase_block(std::uint32_t phase, int block) {
  AURV_CHECK_MSG(phase >= 1 && phase <= algo::kMaxCowWalkIndex,
                 "aurv_phase_block: phase out of range");
  switch (block) {
    case 1: return block1(phase);
    case 2: return block2(phase);
    case 3: return block3(phase);
    case 4: return block4(phase);
    default: AURV_CHECK_MSG(false, "aurv_phase_block: block must be 1..4");
  }
  return {};
}

Rational aurv_block_duration(std::uint32_t phase, int block) {
  // Closed forms (validated against the materialized blocks by the tests;
  // materializing high phases just to sum their durations would be O(4^i)):
  //   block 1: 2^(i+1) PlanarCowWalks
  //   block 2: wait 2^i + Latecomers prefix 2^i + its backtrack 2^i
  //            (Latecomers is wait-free, so the backtrack replays the full
  //            prefix duration)
  //   block 3: wait 2^(15 i^2) + one PlanarCowWalk
  //   block 4: CGKK prefix 2^i cut into 2^(2i) segments + 2^(2i) waits of
  //            2^i + backtrack 2^i  =  2^(3i) + 2^(i+1)
  AURV_CHECK_MSG(phase >= 1 && phase <= algo::kMaxCowWalkIndex,
                 "aurv_block_duration: phase out of range");
  switch (block) {
    case 1: return Rational::pow2(phase + 1) * algo::planar_cow_walk_duration(phase);
    case 2: return Rational(3) * Rational::pow2(phase);
    case 3: return algo::wait_and_search_pause(phase) + algo::planar_cow_walk_duration(phase);
    case 4: return Rational::pow2(3ULL * phase) + Rational::pow2(phase + 1);
    default: AURV_CHECK_MSG(false, "aurv_block_duration: block must be 1..4");
  }
  return 0;
}

Rational aurv_phase_duration(std::uint32_t phase) {
  Rational total = 0;
  for (int block = 1; block <= 4; ++block) total += aurv_block_duration(phase, block);
  return total;
}

Rational aurv_phase_start(std::uint32_t phase) {
  Rational total = 0;
  for (std::uint32_t i = 1; i < phase; ++i) total += aurv_phase_duration(i);
  return total;
}

std::uint32_t aurv_phase_at(const Rational& elapsed) {
  AURV_CHECK_MSG(elapsed.sign() >= 0, "aurv_phase_at: negative time");
  Rational total = 0;
  for (std::uint32_t i = 1; i <= algo::kMaxCowWalkIndex; ++i) {
    total += aurv_phase_duration(i);
    if (elapsed < total) return i;
  }
  return algo::kMaxCowWalkIndex;
}

sim::AlgorithmFactory recommended_algorithm(const agents::Instance& instance) {
  const Classification classification = classify(instance);
  switch (classification.kind) {
    case InstanceKind::BoundaryS1:
      return [instance] { return algo::boundary_s1_algorithm(instance); };
    case InstanceKind::BoundaryS2:
      return [instance] { return algo::boundary_s2_algorithm(instance); };
    default:
      return [] { return almost_universal_rv(); };
  }
}

}  // namespace aurv::core
