#include "core/feasibility.hpp"

#include <cmath>

namespace aurv::core {

std::string to_string(InstanceKind kind) {
  switch (kind) {
    case InstanceKind::TrivialOverlap: return "trivial-overlap";
    case InstanceKind::Type1: return "type-1";
    case InstanceKind::Type2: return "type-2";
    case InstanceKind::Type3: return "type-3";
    case InstanceKind::Type4: return "type-4";
    case InstanceKind::BoundaryS1: return "boundary-S1";
    case InstanceKind::BoundaryS2: return "boundary-S2";
    case InstanceKind::Infeasible: return "infeasible";
  }
  return "unknown";
}

Classification classify(const agents::Instance& instance, double boundary_eps) {
  Classification result;
  result.synchronous = instance.is_synchronous();

  if (instance.initial_distance() <= instance.r()) {
    result.kind = InstanceKind::TrivialOverlap;
    result.feasible = true;
    result.covered_by_aurv = true;
    result.clause = "r >= dist((0,0),(x,y)): agents see each other at time 0";
    return result;
  }

  if (!result.synchronous) {
    // Theorem 3.1(1): every non-synchronous instance is feasible; Algorithm 1
    // handles tau != 1 in its type-3 block, and tau = 1 (so v != 1) in its
    // type-4 block.
    result.feasible = true;
    result.covered_by_aurv = true;
    const bool tau_not_one = instance.tau() != numeric::Rational(1);
    result.kind = tau_not_one ? InstanceKind::Type3 : InstanceKind::Type4;
    result.clause = "Theorem 3.1(1): non-synchronous instances are feasible";
    return result;
  }

  if (instance.chi() == 1) {
    if (instance.phi() != 0.0) {
      // Theorem 3.1(2a).
      result.feasible = true;
      result.covered_by_aurv = true;
      result.kind = InstanceKind::Type4;
      result.clause = "Theorem 3.1(2a): chi=+1 and phi!=0";
      return result;
    }
    const double slack = instance.t_d() - (instance.initial_distance() - instance.r());
    result.boundary_slack = slack;
    if (slack > boundary_eps) {
      result.feasible = true;
      result.covered_by_aurv = true;
      result.kind = InstanceKind::Type2;
      result.clause = "Theorem 3.1(2b): chi=+1, phi=0, t > dist - r";
    } else if (slack >= -boundary_eps) {
      result.feasible = true;
      result.covered_by_aurv = false;
      result.kind = InstanceKind::BoundaryS1;
      result.clause = "Theorem 3.1(2b) boundary: t = dist - r (set S1, Section 4)";
    } else {
      result.kind = InstanceKind::Infeasible;
      result.clause = "Theorem 3.1(2b) violated: chi=+1, phi=0, t < dist - r";
    }
    return result;
  }

  // chi = -1, synchronous: Theorem 3.1(2c).
  const double slack =
      instance.t_d() - (instance.projection_distance() - instance.r());
  result.boundary_slack = slack;
  if (slack > boundary_eps) {
    result.feasible = true;
    result.covered_by_aurv = true;
    result.kind = InstanceKind::Type1;
    result.clause = "Theorem 3.1(2c): chi=-1, t > dist(projA,projB) - r";
  } else if (slack >= -boundary_eps) {
    result.feasible = true;
    result.covered_by_aurv = false;
    result.kind = InstanceKind::BoundaryS2;
    result.clause = "Theorem 3.1(2c) boundary: t = dist(projA,projB) - r (set S2, Section 4)";
  } else {
    result.kind = InstanceKind::Infeasible;
    result.clause = "Theorem 3.1(2c) violated: chi=-1, t < dist(projA,projB) - r";
  }
  return result;
}

bool is_feasible(const agents::Instance& instance, double boundary_eps) {
  return classify(instance, boundary_eps).feasible;
}

bool is_covered_by_aurv(const agents::Instance& instance, double boundary_eps) {
  return classify(instance, boundary_eps).covered_by_aurv;
}

}  // namespace aurv::core
