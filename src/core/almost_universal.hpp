// AlmostUniversalRV — Algorithm 1 of the paper, transcribed block by block.
//
// The program is an infinite sequence of phases i = 1, 2, ...; phase i runs
// four blocks, one per instance type (Section 3.1.1):
//
//   block 1 (type 1): for j = 1..2^(i+1), PlanarCowWalk(i) in Rot(j*pi/2^i)
//   block 2 (type 2): wait(2^i); Latecomers for time 2^i; backtrack
//   block 3 (type 3): wait(2^(15 i^2)); PlanarCowWalk(i)
//   block 4 (type 4): the solo CGKK prefix of duration 2^i cut into 2^(2i)
//                     segments of 1/2^i, each followed by wait(2^i);
//                     backtrack
//
// Every block starts and ends at the agent's initial position (Lemma 3.1),
// which the property tests verify. The "interrupt as soon as the other
// agent is seen" rule of line 1 is the simulator's freeze-on-sight
// semantics, not part of the program itself.
//
// AlmostUniversalRV takes no input: it is the single universal algorithm of
// Theorem 3.2. Helpers below expose per-phase/per-block sub-programs for
// the figure experiments and tests.
#pragma once

#include <cstdint>

#include "agents/instance.hpp"
#include "program/instruction.hpp"
#include "sim/engine.hpp"

namespace aurv::core {

/// The full infinite program (Algorithm 1).
[[nodiscard]] program::Program almost_universal_rv();

/// Ablation variant of Algorithm 1: runs only the blocks whose bit is set
/// in `block_mask` (bit 0 = block 1 ... bit 3 = block 4) in every phase.
/// Requires a nonzero mask (checked). Used by the ablation experiments to
/// show which block rescues which instance type — and how much incidental
/// redundancy the blocks have. almost_universal_rv() == mask 0b1111.
[[nodiscard]] program::Program almost_universal_rv_blocks(unsigned block_mask);

/// Blocks of one phase, materialized — the exact instructions an agent
/// executes during phase i's block (1-based block index, 1..4).
[[nodiscard]] std::vector<program::Instruction> aurv_phase_block(std::uint32_t phase,
                                                                 int block);

/// Local duration of one block of phase i (closed form; block in 1..4).
[[nodiscard]] numeric::Rational aurv_block_duration(std::uint32_t phase, int block);

/// Local duration of phase i (all four blocks).
[[nodiscard]] numeric::Rational aurv_phase_duration(std::uint32_t phase);

/// Local time from program start until the beginning of phase i.
[[nodiscard]] numeric::Rational aurv_phase_start(std::uint32_t phase);

/// Phase index in progress at local time `elapsed` (1-based). Used by the
/// experiments to report in which phase rendezvous landed.
[[nodiscard]] std::uint32_t aurv_phase_at(const numeric::Rational& elapsed);

/// Picks the right algorithm for an instance: AlmostUniversalRV whenever
/// Theorem 3.2 covers it, the dedicated boundary algorithm on S1/S2, and
/// AlmostUniversalRV (which cannot succeed) on infeasible input. This is
/// the convenience entry point a downstream user wants.
[[nodiscard]] sim::AlgorithmFactory recommended_algorithm(const agents::Instance& instance);

}  // namespace aurv::core
