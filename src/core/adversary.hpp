// Adversarial instance construction for the impossibility results:
//
//   Theorem 4.1 — no single algorithm solves every S2 instance
//   (synchronous, chi = -1, t = dist(projA,projB) - r), and the analogous
//   result imported from [38] for S1 (synchronous, chi = +1, phi = 0,
//   t = dist - r).
//
// Both proofs are diagonalizations over directions: on the S2 boundary,
// rendezvous forces the earlier agent to traverse a straight segment of
// inclination exactly phi/2 (Claim 4.1); on the S1 boundary it forces a
// full-speed straight run of length >= t in the exact ray direction of
// (x,y). A fixed deterministic algorithm uses countably many segment
// directions, so an adversary picks a direction it never uses.
//
// The executable counterpart: given any algorithm and an analysis horizon,
// extract the directions of its solo trajectory prefix, pick the midpoint
// of the largest angular gap, and build the boundary instance aimed there.
// The experiments then verify (a) the algorithm does not meet within the
// horizon and keeps min distance > r, and (b) the same instance is solved
// by its dedicated boundary algorithm — "we miss little and cannot avoid
// it altogether".
#pragma once

#include <cstddef>
#include <vector>

#include "agents/instance.hpp"
#include "numeric/rational.hpp"
#include "sim/engine.hpp"

namespace aurv::core {

struct AdversaryConfig {
  /// Local-time length of the solo trajectory prefix to analyze.
  numeric::Rational analysis_horizon = 4096;
  /// Visibility radius of the constructed instance.
  double r = 1.0;
  /// Wake-up delay of the constructed instance (boundary position follows).
  numeric::Rational t = 2;
  /// S2 only: distance between the two agents measured across the canonical
  /// line (each agent sits at half of it on either side).
  double lateral_offset = 1.4;
  /// Cap on materialized prefix instructions.
  std::size_t max_instructions = 20'000'000;
};

struct AdversaryReport {
  agents::Instance instance;        ///< the defeating boundary instance
  double chosen_direction = 0.0;    ///< ray direction (S1) / line inclination phi/2 (S2)
  std::size_t directions_used = 0;  ///< distinct prefix directions (after dedup)
  double angular_gap = 0.0;         ///< margin to the nearest used direction
};

/// Builds an S1 instance the given algorithm cannot solve (within any
/// horizon that only exercises the analyzed prefix).
[[nodiscard]] AdversaryReport construct_s1_counterexample(const sim::AlgorithmFactory& algorithm,
                                                          const AdversaryConfig& config = {});

/// Builds an S2 instance the given algorithm cannot solve, per Theorem 4.1.
[[nodiscard]] AdversaryReport construct_s2_counterexample(const sim::AlgorithmFactory& algorithm,
                                                          const AdversaryConfig& config = {});

/// The distinct ray directions (period 2*pi, `period_pi` false) or line
/// inclinations (period pi, `period_pi` true) of the moves in a trajectory
/// prefix. Exposed for tests and the TAB-4 bench.
[[nodiscard]] std::vector<double> prefix_directions(const sim::AlgorithmFactory& algorithm,
                                                    const numeric::Rational& horizon,
                                                    bool period_pi,
                                                    std::size_t max_instructions);

/// Midpoint of the largest gap of `directions` on the circle of the given
/// period (returns period/4 for an empty set). Exposed for tests.
[[nodiscard]] double largest_gap_midpoint(std::vector<double> directions, double period);

}  // namespace aurv::core
