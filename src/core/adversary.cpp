#include "core/adversary.hpp"

#include <algorithm>
#include <cmath>

#include "geom/angle.hpp"
#include "program/combinators.hpp"
#include "support/check.hpp"

namespace aurv::core {

using numeric::Rational;

std::vector<double> prefix_directions(const sim::AlgorithmFactory& algorithm,
                                      const Rational& horizon, bool period_pi,
                                      std::size_t max_instructions) {
  const std::vector<program::Instruction> prefix =
      program::take_duration_capped(algorithm(), horizon, max_instructions);
  std::vector<double> directions;
  directions.reserve(prefix.size());
  for (const program::Instruction& instruction : prefix) {
    if (const auto* move = std::get_if<program::Go>(&instruction)) {
      if (move->distance.is_zero()) continue;
      double d = geom::normalize_angle(move->heading);
      if (period_pi && d >= geom::kPi) d -= geom::kPi;
      directions.push_back(d);
    }
  }
  std::sort(directions.begin(), directions.end());
  // Dedup directions closer than ~1 micro-radian; the adversary only needs
  // the gap structure, not exact multiplicities.
  constexpr double kEps = 1e-6;
  std::vector<double> unique;
  for (const double d : directions) {
    if (unique.empty() || d - unique.back() > kEps) unique.push_back(d);
  }
  return unique;
}

double largest_gap_midpoint(std::vector<double> directions, double period) {
  AURV_CHECK_MSG(period > 0.0, "largest_gap_midpoint: period must be positive");
  if (directions.empty()) return period / 4.0;
  std::sort(directions.begin(), directions.end());
  double best_gap = period - directions.back() + directions.front();  // wrap-around gap
  double best_mid = directions.back() + best_gap / 2.0;
  if (best_mid >= period) best_mid -= period;
  for (std::size_t k = 0; k + 1 < directions.size(); ++k) {
    const double gap = directions[k + 1] - directions[k];
    if (gap > best_gap) {
      best_gap = gap;
      best_mid = directions[k] + gap / 2.0;
    }
  }
  return best_mid;
}

AdversaryReport construct_s1_counterexample(const sim::AlgorithmFactory& algorithm,
                                            const AdversaryConfig& config) {
  // S1: rendezvous at t = dist - r requires the earlier agent to cover a
  // straight full-speed run of length >= t in the exact ray direction of
  // (x,y) (see header). Aim (x,y) into the largest unused ray gap.
  std::vector<double> used = prefix_directions(algorithm, config.analysis_horizon,
                                               /*period_pi=*/false, config.max_instructions);
  const double theta = largest_gap_midpoint(used, geom::kTwoPi);
  double gap = geom::kTwoPi;
  for (const double d : used) gap = std::min(gap, geom::ray_angle_between(theta, d));

  const double dist = config.t.to_double() + config.r;  // boundary: t = dist - r
  const geom::Vec2 b_start = dist * geom::unit_vector(theta);
  agents::Instance instance =
      agents::Instance::synchronous(config.r, b_start, /*phi=*/0.0, config.t, /*chi=*/+1);
  return {std::move(instance), theta, used.size(), used.empty() ? geom::kTwoPi : gap};
}

AdversaryReport construct_s2_counterexample(const sim::AlgorithmFactory& algorithm,
                                            const AdversaryConfig& config) {
  // S2 (Theorem 4.1): rendezvous at t = dist(projA,projB) - r requires a
  // segment of inclination exactly phi/2 (Claim 4.1). Pick phi/2 in the
  // largest gap of the prefix's *line inclinations*.
  std::vector<double> used = prefix_directions(algorithm, config.analysis_horizon,
                                               /*period_pi=*/true, config.max_instructions);
  const double half_phi = largest_gap_midpoint(used, geom::kPi);
  double gap = geom::kPi;
  for (const double d : used) gap = std::min(gap, geom::line_angle_between(half_phi, d));

  // Place B so the projections onto the canonical line (inclination phi/2)
  // are dist_proj = t + r apart, with the agents straddling the line by the
  // configured lateral offset.
  const double dist_proj = config.t.to_double() + config.r;  // boundary: t = dist_proj - r
  const geom::Vec2 along = geom::unit_vector(half_phi);
  const geom::Vec2 across = along.perp();
  const geom::Vec2 b_start = dist_proj * along + config.lateral_offset * across;
  const double phi = geom::normalize_angle(2.0 * half_phi);
  agents::Instance instance =
      agents::Instance::synchronous(config.r, b_start, phi, config.t, /*chi=*/-1);
  return {std::move(instance), half_phi, used.size(), used.empty() ? geom::kPi : gap};
}

}  // namespace aurv::core
