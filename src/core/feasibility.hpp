// Theorem 3.1 — the exact characterization of feasible instances — plus the
// four-type taxonomy of Section 3.1.1 that drives Algorithm 1's analysis:
//
//   type 1: synchronous, chi = -1, t >  dist(projA,projB) - r
//   type 2: synchronous, chi = +1, phi = 0, t > dist - r
//   type 3: tau != 1
//   type 4: every other instance covered by Theorem 3.2
//           (tau = 1 non-synchronous, or synchronous chi=+1 phi!=0)
//
// and the two exception sets AlmostUniversalRV provably misses:
//
//   S1: synchronous, chi = +1, phi = 0, t = dist - r
//   S2: synchronous, chi = -1,          t = dist(projA,projB) - r
//
// Everything outside these and the feasible region is infeasible; instances
// with r >= dist meet trivially at time 0 and are reported as such.
#pragma once

#include <string>

#include "agents/instance.hpp"

namespace aurv::core {

enum class InstanceKind : std::uint8_t {
  TrivialOverlap,  ///< r >= initial distance: rendezvous at time 0
  Type1,
  Type2,
  Type3,
  Type4,
  BoundaryS1,  ///< feasible, but outside AlmostUniversalRV's guarantee
  BoundaryS2,  ///< feasible, but outside AlmostUniversalRV's guarantee
  Infeasible,
};

[[nodiscard]] std::string to_string(InstanceKind kind);

struct Classification {
  InstanceKind kind = InstanceKind::Infeasible;
  bool feasible = false;       ///< Theorem 3.1 verdict
  bool covered_by_aurv = false;///< Theorem 3.2 guarantee applies
  bool synchronous = false;
  /// Signed distance to the feasibility boundary along t:
  ///   chi=+1, phi=0 synchronous:  t - (dist - r)        (the paper's value)
  ///   chi=-1 synchronous:         t - (distproj - r)    (the paper's e)
  /// 0 for instances where no boundary applies (always feasible).
  double boundary_slack = 0.0;
  /// Which clause of Theorem 3.1 decided feasibility (human readable).
  std::string clause;
};

/// Classifies an instance. `boundary_eps` is the tolerance inside which the
/// double-precision boundary quantity t - (d - r) counts as exactly zero;
/// instances built with Rational::from_double hit the boundary bit-exactly,
/// randomized sweeps should pass a suitable tolerance explicitly.
[[nodiscard]] Classification classify(const agents::Instance& instance,
                                      double boundary_eps = 1e-12);

/// Theorem 3.1 as a predicate.
[[nodiscard]] bool is_feasible(const agents::Instance& instance, double boundary_eps = 1e-12);

/// Theorem 3.2's coverage set as a predicate (feasible minus S1/S2).
[[nodiscard]] bool is_covered_by_aurv(const agents::Instance& instance,
                                      double boundary_eps = 1e-12);

}  // namespace aurv::core
