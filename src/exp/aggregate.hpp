// Streaming campaign statistics: everything the paper's sweep tables report
// about a population of runs, in O(1) memory per shard.
//
// An aggregate absorbs SimResults one at a time and merges associatively
// with other aggregates. Both operations are performed in a fixed order by
// the campaign runner (job order within a shard, shard order across
// shards), so every field — including the floating-point sums — is
// bit-identical at any thread count. Percentiles come from a fixed
// log2-bucketed histogram of meet times (exact to the bucket, deterministic
// by construction); exact extrema are tracked separately.
#pragma once

#include <array>
#include <cstdint>

#include "sim/engine.hpp"
#include "support/json.hpp"

namespace aurv::exp {

struct CampaignAggregate {
  /// log2 buckets for meet times: bucket k covers [2^(k-16), 2^(k-15)),
  /// clamped at the ends. Covers 2^-16 .. 2^48 absolute time units, beyond
  /// the span of any experiment in the repo (block-3 waits land in the
  /// engine's fuel budget long before 2^48).
  static constexpr int kHistogramBuckets = 64;
  static constexpr int kHistogramOffset = 16;

  std::uint64_t runs = 0;
  std::uint64_t met = 0;
  /// Indexed by sim::StopReason.
  std::array<std::uint64_t, 4> stop_reasons{};

  std::uint64_t total_events = 0;
  std::uint64_t max_events = 0;

  double meet_time_sum = 0.0;
  double meet_time_min = 0.0;  ///< valid when met > 0
  double meet_time_max = 0.0;
  std::array<std::uint64_t, kHistogramBuckets> meet_time_histogram{};

  /// min over all runs of the run's continuous minimum distance — the
  /// impossibility campaigns assert this floor stays above r.
  double min_distance_floor = 0.0;  ///< valid when runs > 0

  void add(const sim::SimResult& result);

  /// Associative combine; the runner always calls this left-to-right in
  /// shard order, which is what makes double sums reproducible.
  void merge(const CampaignAggregate& other);

  /// Meet-time percentile from the histogram: upper edge of the bucket
  /// containing the p-quantile rank among met runs (0 when met == 0).
  [[nodiscard]] double meet_time_percentile(double p) const;

  [[nodiscard]] double meet_rate() const {
    return runs == 0 ? 0.0 : static_cast<double>(met) / static_cast<double>(runs);
  }

  /// Lossless round-trip (doubles serialized exactly) — the checkpoint
  /// format. to_json also embeds derived convenience fields (meet_rate,
  /// p50/p95/p99) which from_json ignores.
  [[nodiscard]] support::Json to_json() const;
  [[nodiscard]] static CampaignAggregate from_json(const support::Json& json);

  friend bool operator==(const CampaignAggregate& a, const CampaignAggregate& b) = default;
};

/// Histogram bucket index for a meet time (exposed for tests).
[[nodiscard]] int meet_time_bucket(double meet_time);

/// Percentile from a meet_time_bucket-convention log2 histogram: upper edge
/// of the bucket containing the p-quantile rank among `count` entries
/// (1-based, ceil convention); `fallback_max` when the rank lies beyond the
/// last bucket, 0 when count == 0. Shared with the gathering aggregates so
/// gather and meet percentiles read on one scale.
[[nodiscard]] double histogram_percentile(
    const std::array<std::uint64_t, CampaignAggregate::kHistogramBuckets>& histogram,
    std::uint64_t count, double p, double fallback_max);

}  // namespace aurv::exp
