// ScenarioSpec — the declarative description of a campaign.
//
// A spec names *what* to run (an instance source and an algorithm from the
// registries), *how much* (count x replications), *how* (engine config) and
// *from where* (the seed): everything needed to reproduce a sweep table,
// a census or an impossibility horizon as data in a scenarios/*.json file
// instead of a hand-rolled C++ loop. Parsing is strict — unknown keys are
// rejected so a typo'd field fails loudly instead of silently running a
// different experiment.
//
// Schema (see EXPERIMENTS.md for the prose version):
//
//   {
//     "schema": 1,
//     "name": "type1_census",
//     "description": "optional free text",
//     "algorithm": "aurv",                  // exp::algorithm_names()
//     "seed": 2020,
//     "replications": 1,                    // runs per instance
//     "source": {                           // exactly one of:
//       "sampler": "type1", "count": 2500,  //   region sampler
//       "ranges": { "r_min": 0.5, ... }     //   (optional overrides)
//     },                                    // or:
//     //  "grid": [ {"r":1,"x":2,"y":0.6,"phi":0,"tau":1,"v":1,"t":"3/2","chi":-1}, ... ]
//     "engine": {                           // all optional
//       "max_events": 4000000,
//       "contact_slack": 1e-9,
//       "horizon": "4096",                  // exact rational; absent = none
//       "r_a": 1.5, "r_b": 0.5              // distinct radii; absent = instance r
//     }
//   }
//
// tau/v/t and horizon accept exact rationals as strings ("3/2") or JSON
// numbers (converted exactly via Rational::from_double).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "agents/instance.hpp"
#include "agents/sampler.hpp"
#include "sim/engine.hpp"
#include "support/json.hpp"

namespace aurv::exp {

struct ScenarioSpec {
  std::string name;
  std::string description;
  std::string algorithm = "aurv";
  std::uint64_t seed = 0;
  std::uint64_t replications = 1;

  /// Sampler mode when non-empty (then `count` instances are drawn);
  /// otherwise `grid` holds the explicit instances.
  std::string sampler;
  std::uint64_t count = 0;
  agents::SamplerRanges ranges;
  std::vector<agents::Instance> grid;

  sim::EngineConfig engine;

  /// count (or grid size) x replications.
  [[nodiscard]] std::uint64_t total_jobs() const;
  [[nodiscard]] std::uint64_t instance_count() const {
    return sampler.empty() ? grid.size() : count;
  }

  /// Strict parse; throws support::JsonError / std::invalid_argument with a
  /// message naming the offending field. Validates the algorithm and
  /// sampler names against the registries.
  [[nodiscard]] static ScenarioSpec from_json(const support::Json& json);
  [[nodiscard]] support::Json to_json() const;

  [[nodiscard]] static ScenarioSpec load(const std::string& path);
  void save(const std::string& path) const;

  /// FNV-1a over the canonical serialization — checkpoints store it so a
  /// resume against an edited spec is refused instead of merging apples
  /// into oranges.
  [[nodiscard]] std::uint64_t fingerprint() const;
};

}  // namespace aurv::exp
