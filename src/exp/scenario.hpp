// ScenarioSpec — the declarative description of a campaign.
//
// A spec names *what* to run (an instance source and an algorithm from the
// registries), *how much* (count x replications), *how* (engine config) and
// *from where* (the seed): everything needed to reproduce a sweep table,
// a census or an impossibility horizon as data in a scenarios/*.json file
// instead of a hand-rolled C++ loop. Parsing is strict — unknown keys are
// rejected so a typo'd field fails loudly instead of silently running a
// different experiment.
//
// Schema (see EXPERIMENTS.md for the prose version):
//
//   {
//     "schema": 1,
//     "name": "type1_census",
//     "description": "optional free text",
//     "algorithm": "aurv",                  // exp::algorithm_names()
//     "seed": 2020,
//     "replications": 1,                    // runs per instance
//     "source": {                           // exactly one of:
//       "sampler": "type1", "count": 2500,  //   region sampler
//       "ranges": { "r_min": 0.5, ... }     //   (optional overrides)
//     },                                    // or:
//     //  "grid": [ {"r":1,"x":2,"y":0.6,"phi":0,"tau":1,"v":1,"t":"3/2","chi":-1}, ... ]
//     "engine": {                           // all optional
//       "max_events": 4000000,
//       "contact_slack": 1e-9,
//       "horizon": "4096",                  // exact rational; absent = none
//       "r_a": 1.5, "r_b": 0.5              // distinct radii; absent = instance r
//     }
//   }
//
// tau/v/t and horizon accept exact rationals as strings ("3/2") or JSON
// numbers (converted exactly via Rational::from_double).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "agents/instance.hpp"
#include "agents/sampler.hpp"
#include "search/bnb.hpp"
#include "search/box.hpp"
#include "search/objective.hpp"
#include "sim/engine.hpp"
#include "support/json.hpp"

namespace aurv::exp {

struct ScenarioSpec {
  std::string name;
  std::string description;
  std::string algorithm = "aurv";
  std::uint64_t seed = 0;
  std::uint64_t replications = 1;

  /// Sampler mode when non-empty (then `count` instances are drawn);
  /// otherwise `grid` holds the explicit instances.
  std::string sampler;
  std::uint64_t count = 0;
  agents::SamplerRanges ranges;
  std::vector<agents::Instance> grid;

  sim::EngineConfig engine;

  /// count (or grid size) x replications.
  [[nodiscard]] std::uint64_t total_jobs() const;
  [[nodiscard]] std::uint64_t instance_count() const {
    return sampler.empty() ? grid.size() : count;
  }

  /// Strict parse; throws support::JsonError / std::invalid_argument with a
  /// message naming the offending field. Validates the algorithm and
  /// sampler names against the registries.
  [[nodiscard]] static ScenarioSpec from_json(const support::Json& json);
  [[nodiscard]] support::Json to_json() const;

  [[nodiscard]] static ScenarioSpec load(const std::string& path);
  void save(const std::string& path) const;

  /// FNV-1a over the canonical serialization — checkpoints store it so a
  /// resume against an edited spec is refused instead of merging apples
  /// into oranges.
  [[nodiscard]] std::uint64_t fingerprint() const;
};

/// SearchSpec — the declarative description of a worst-case search: a
/// branch-and-bound over a parameter box of the adversary's instance space
/// (src/search/), as data in a scenarios/search_*.json file.
///
/// Schema (see EXPERIMENTS.md for the prose version):
///
///   {
///     "schema": 1,
///     "kind": "search",                     // distinguishes from campaigns
///     "name": "s2_near_miss",
///     "description": "optional free text",
///     "algorithm": "aurv",                  // exp::algorithm_names()
///     "objective": "near-miss",             // search::objective_names()
///     "space": {
///       "family": "boundary-s2",            // tuple | boundary-s1 | boundary-s2
///       // "chi": -1,                       // tuple family only; boundary
///       //                                  // families pin it (field rejected)
///       "fixed": { "r": 1, "t": 2 },        // pinned params (exact rationals)
///       "box": { "half_phi": [0, "157/100"] }  // searched dims -> [lo, hi]
///     },
///     "budget": {                           // all optional
///       "max_boxes": 512,                   // evaluation budget
///       "wave_size": 16,                    // boxes per deterministic wave
///       "min_width": "1/1024",              // leaf resolution
///       "min_improvement": 0                // pruning margin
///     },
///     "engine": { "horizon": "256", ... }   // same block as campaign specs
///   }
///
/// Box dimension order is the order of the "box" object's keys; every
/// rational field accepts "a/b" strings or JSON numbers (exact via
/// Rational::from_double). Parsing is strict: unknown keys, unknown
/// objective/algorithm/family names and ill-formed spaces are load-time
/// errors — including objective-space constraint violations (surfaced by
/// constructing the objective once at load).
struct SearchSpec {
  std::string name;
  std::string description;
  std::string algorithm = "aurv";
  std::string objective = "max-meet-time";

  search::SearchSpace space;
  /// Root intervals, one per space.dim_names entry (same order).
  std::vector<search::Interval> box;
  search::BnbLimits limits;

  sim::EngineConfig engine;

  /// The root of the canonical refinement tree.
  [[nodiscard]] search::ParamBox root_box() const { return search::ParamBox(box); }

  /// Strict parse; throws support::JsonError / std::invalid_argument naming
  /// the offending field.
  [[nodiscard]] static SearchSpec from_json(const support::Json& json);
  [[nodiscard]] support::Json to_json() const;

  [[nodiscard]] static SearchSpec load(const std::string& path);
  void save(const std::string& path) const;

  /// FNV-1a over the canonical serialization; search checkpoints store it
  /// so resuming an edited spec is refused.
  [[nodiscard]] std::uint64_t fingerprint() const;
};

/// The algorithm resolver a SearchSpec's objective drives: instance-aware
/// (registry resolver) for the two-agent families, instance-blind for
/// gather-tuple — gathering runs one *common* program on every agent, so
/// instance-dispatching entries ("boundary", "recommended") are rejected
/// via resolve_common_algorithm. Throws std::invalid_argument accordingly.
[[nodiscard]] search::AlgorithmResolverFn search_algorithm_resolver(const SearchSpec& spec);

}  // namespace aurv::exp
