// The checkpointed sharded-stream harness shared by the campaign runner
// (exp/runner.cpp) and the gathering census driver (gatherx/census.cpp):
// a chunked work-queue of jobs feeding a streaming aggregate and an
// optional JSONL sink, merged strictly in shard order via
// support::run_sharded, with fingerprint-pinned checkpoints and resume.
//
// Everything that makes the two runners deterministic lives here exactly
// once: the in-order merge (bit-identical double sums at any thread
// count), the bounded stash (constant memory however large the stream),
// the checkpoint schema and its resume validation (kind, fingerprint,
// shard_size, jsonl path), the JSONL truncate-on-resume contract, and the
// jobs_run accounting. Callers provide only their vocabulary: the
// checkpoint `kind` string, the spec fingerprint, and a per-job body.
//
// `Aggregate` must provide merge(const Aggregate&), to_json() and a
// static from_json(const Json&) (lossless round-trip: it is the
// checkpoint payload).
#pragma once

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>

#include "exp/runner.hpp"
#include "support/check.hpp"
#include "support/jsonl.hpp"
#include "support/parallel.hpp"
#include "support/statusd.hpp"
#include "support/telemetry.hpp"
#include "support/trace.hpp"

namespace aurv::exp {

template <typename Aggregate>
struct StreamRunResult {
  Aggregate aggregate;
  std::uint64_t jobs = 0;            ///< total jobs in the stream
  std::uint64_t jobs_run = 0;        ///< jobs executed by this invocation
  std::uint64_t resumed_shards = 0;  ///< completed-shard prefix from a checkpoint
  bool complete = true;              ///< false when max_shards stopped the run early
};

/// Runs (or resumes) the stream. `run_job(job, aggregate, jsonl)` executes
/// one job into the shard-local aggregate; `jsonl` is nullptr when the sink
/// is off, otherwise the job's record line(s) are appended to it. Throws
/// std::invalid_argument for option/checkpoint mismatches; job exceptions
/// propagate with deterministic first-in-job-order semantics.
template <typename Aggregate, typename RunJob>
[[nodiscard]] StreamRunResult<Aggregate> run_checkpointed_stream(
    const char* checkpoint_kind, std::uint64_t fingerprint, std::uint64_t total_jobs,
    const CampaignOptions& options, RunJob&& run_job) {
  using support::Json;

  AURV_CHECK_MSG(options.shard_size >= 1, "shard_size must be >= 1");
  AURV_CHECK_MSG(options.checkpoint_every >= 1, "checkpoint_every must be >= 1");
  AURV_CHECK_MSG(total_jobs >= 1, "stream has no jobs");
  const std::uint64_t total_shards = (total_jobs + options.shard_size - 1) / options.shard_size;

  struct CheckpointState {
    std::uint64_t completed_shards = 0;
    std::uint64_t jsonl_bytes = 0;
    Aggregate aggregate;
  };
  const std::string fingerprint_hex = support::fingerprint_hex(fingerprint);

  const auto checkpoint_to_json = [&](const CheckpointState& state) {
    Json json = Json::object();
    json.set("schema", Json(std::uint64_t{1}));
    json.set("kind", Json(checkpoint_kind));
    json.set("fingerprint", Json(fingerprint_hex));
    json.set("shard_size", Json(static_cast<std::uint64_t>(options.shard_size)));
    json.set("jsonl_path", Json(options.jsonl_path));
    json.set("completed_shards", Json(state.completed_shards));
    json.set("jsonl_bytes", Json(state.jsonl_bytes));
    json.set("aggregate", state.aggregate.to_json());
    return json;
  };
  const auto checkpoint_from_json = [&](const Json& json) {
    // Foreign checkpoints carry the path so drivers can emit one
    // structured diagnostic line (CheckpointError is still an
    // invalid_argument — the contract below is unchanged).
    if (json.string_or("kind", "") != checkpoint_kind)
      throw support::CheckpointError(
          options.checkpoint_path,
          std::string("not a ") + checkpoint_kind + " file (foreign checkpoint)");
    if (json.at("fingerprint").as_string() != fingerprint_hex)
      throw support::CheckpointError(
          options.checkpoint_path,
          "spec fingerprint mismatch (spec edited since the checkpoint was "
          "written; delete the checkpoint to start over)");
    if (json.at("shard_size").as_uint() != options.shard_size)
      throw std::invalid_argument("checkpoint: shard_size mismatch (resume with --shard-size " +
                                  std::to_string(json.at("shard_size").as_uint()) + ")");
    if (json.at("jsonl_path").as_string() != options.jsonl_path)
      throw std::invalid_argument(
          "checkpoint: --jsonl path differs from the original run's (\"" +
          json.at("jsonl_path").as_string() + "\"); resuming would truncate the wrong file");
    CheckpointState state;
    state.completed_shards = json.at("completed_shards").as_uint();
    state.jsonl_bytes = json.at("jsonl_bytes").as_uint();
    state.aggregate = Aggregate::from_json(json.at("aggregate"));
    return state;
  };

  CheckpointState state;  // completed prefix (empty unless resuming)
  if (options.resume && !options.checkpoint_path.empty()) {
    // An explicit --resume with nothing (usable) to resume is refused
    // with a structured error instead of silently starting over:
    // restarting would truncate the very stream the caller asked to
    // extend.
    if (!support::vfs().exists(options.checkpoint_path))
      throw support::CheckpointError(
          options.checkpoint_path,
          "missing (no checkpoint at this path; run without --resume to start fresh)");
    Json checkpoint;
    try {
      checkpoint = Json::load_file(options.checkpoint_path);
    } catch (const support::JsonError& error) {
      throw support::CheckpointError(
          options.checkpoint_path,
          std::string("unreadable or truncated (") + error.what() + ")");
    }
    state = checkpoint_from_json(checkpoint);
    if (state.completed_shards > total_shards)
      throw std::invalid_argument("checkpoint: more shards than the stream has");
  }

  StreamRunResult<Aggregate> result;
  result.jobs = total_jobs;
  result.resumed_shards = state.completed_shards;

  // Telemetry: jobs are tallied into a shard-local accumulator in `body`
  // and folded into the registry by `complete`, which run_sharded calls
  // strictly in shard order — so even the intermediate counter sequence
  // is thread-count-invariant. Gauges track progress for the heartbeat.
  namespace telemetry = support::telemetry;
  telemetry::Counter& shards_counter = telemetry::registry().counter("runner.shards");
  telemetry::Counter& checkpoints_counter = telemetry::registry().counter("runner.checkpoints");
  telemetry::Gauge& jobs_done_gauge = telemetry::registry().gauge("runner.jobs_done");
  telemetry::Gauge& jobs_total_gauge = telemetry::registry().gauge("runner.jobs_total");
  telemetry::Timer& checkpoint_timer = telemetry::registry().timer("runner.checkpoint_write");
  jobs_total_gauge.set(static_cast<std::int64_t>(total_jobs));
  jobs_done_gauge.set(
      static_cast<std::int64_t>(std::min(total_jobs, state.completed_shards * options.shard_size)));

  // Live /status progress for the embedded status server: reads only
  // registry atomics (process-lifetime objects), unregistered — blocking
  // on any in-flight scrape — when this frame unwinds.
  const support::statusd::ScopedProgress progress_provider(
      "runner", [&jobs_done_gauge, &jobs_total_gauge, &shards_counter] {
        Json progress = Json::object();
        progress.set("jobs_done", Json(static_cast<std::uint64_t>(
                                      std::max<std::int64_t>(0, jobs_done_gauge.value()))));
        progress.set("jobs_total", Json(static_cast<std::uint64_t>(
                                       std::max<std::int64_t>(0, jobs_total_gauge.value()))));
        progress.set("shards", Json(shards_counter.value()));
        return progress;
      });

  const std::uint64_t start_shard = state.completed_shards;
  std::uint64_t end_shard = total_shards;
  if (options.max_shards > 0)
    end_shard = std::min(end_shard, start_shard + options.max_shards);

  support::JsonlSink jsonl(options.jsonl_path, start_shard > 0 ? state.jsonl_bytes : 0);

  struct ShardOutput {
    Aggregate aggregate;
    std::string jsonl;
    telemetry::ShardAccumulator metrics;
    support::trace::TraceBuffer trace;  ///< shard-local spans, merged in order
  };
  std::mutex stash_mutex;
  // Size bounded by the runner's max_in_flight window (set below), even
  // when one slow shard stalls the in-order drain while fast workers race
  // ahead — that bound is what keeps huge streams constant-memory.
  std::map<std::uint64_t, ShardOutput> stash;

  const bool want_jsonl = !options.jsonl_path.empty();
  const auto job_range = [&](std::uint64_t shard) {
    const std::uint64_t lo = shard * options.shard_size;
    const std::uint64_t hi = std::min<std::uint64_t>(total_jobs, lo + options.shard_size);
    return std::pair{lo, hi};
  };

  const auto body = [&](std::size_t local_shard) {
    const std::uint64_t shard = start_shard + local_shard;
    const auto [lo, hi] = job_range(shard);
    ShardOutput output;
    output.trace = support::trace::TraceBuffer(static_cast<std::uint32_t>(shard + 1));
    {
      // Scoped so the span lands in the buffer before the output moves.
      support::trace::Span span(
          "shard", "runner", support::trace::Span::Options{.buffer = &output.trace});
      if (span.armed()) {
        Json args = Json::object();
        args.set("shard", Json(shard));
        args.set("jobs", Json(hi - lo));
        span.set_args(std::move(args));
      }
      for (std::uint64_t job = lo; job < hi; ++job) {
        run_job(job, output.aggregate, want_jsonl ? &output.jsonl : nullptr);
      }
    }
    output.metrics.add("runner.jobs", hi - lo);
    const std::scoped_lock lock(stash_mutex);
    stash.emplace(shard, std::move(output));
  };

  const auto complete = [&](std::size_t local_shard) {
    const std::uint64_t shard = start_shard + local_shard;
    ShardOutput output;
    {
      const std::scoped_lock lock(stash_mutex);
      const auto found = stash.find(shard);
      AURV_CHECK_MSG(found != stash.end(), "shard output missing at completion");
      output = std::move(found->second);
      stash.erase(found);
    }
    state.aggregate.merge(output.aggregate);
    telemetry::registry().merge(output.metrics);
    support::trace::sink().merge(output.trace);
    shards_counter.add();
    jsonl.append(output.jsonl);
    state.completed_shards = shard + 1;
    state.jsonl_bytes = jsonl.bytes();
    {
      const auto [lo, hi] = job_range(shard);
      (void)lo;
      jobs_done_gauge.set(static_cast<std::int64_t>(hi));
    }
    if (!options.checkpoint_path.empty() &&
        ((shard + 1) % options.checkpoint_every == 0 || shard + 1 == total_shards)) {
      jsonl.flush();
      const telemetry::ScopedTimer time_checkpoint(checkpoint_timer);
      const support::trace::Span span("checkpoint", "runner",
                                      support::trace::Span::Options{.announce = true});
      support::save_json_atomically(options.checkpoint_path, checkpoint_to_json(state));
      checkpoints_counter.add();
    }
    if (options.progress) {
      const auto [lo, hi] = job_range(shard);
      (void)lo;
      options.progress(hi, total_jobs);
    }
  };

  if (end_shard > start_shard) {
    support::ShardedRunOptions sharded;
    sharded.threads = options.threads;
    sharded.max_in_flight = 16;  // stash stays O(window), not O(total shards)
    support::run_sharded(static_cast<std::size_t>(end_shard - start_shard), body, complete,
                         sharded);
  }

  // If the run was cut short (max_shards) with checkpointing on, persist the
  // frontier even when it does not land on a checkpoint_every boundary, so
  // the next invocation resumes from exactly where this one stopped.
  result.complete = state.completed_shards == total_shards;
  if (!result.complete && !options.checkpoint_path.empty()) {
    jsonl.flush();
    const telemetry::ScopedTimer time_checkpoint(checkpoint_timer);
    const support::trace::Span span("checkpoint", "runner",
                                    support::trace::Span::Options{.announce = true});
    support::save_json_atomically(options.checkpoint_path, checkpoint_to_json(state));
    checkpoints_counter.add();
  }

  result.aggregate = std::move(state.aggregate);
  const std::uint64_t start_jobs = std::min(total_jobs, start_shard * options.shard_size);
  const std::uint64_t done_jobs = state.completed_shards == total_shards
                                      ? total_jobs
                                      : state.completed_shards * options.shard_size;
  result.jobs_run = done_jobs - start_jobs;
  return result;
}

}  // namespace aurv::exp
