#include "exp/runner.hpp"

#include <random>

#include "exp/registry.hpp"
#include "exp/stream_runner.hpp"
#include "support/check.hpp"

namespace aurv::exp {

using support::Json;

namespace {

/// One line per run, compact JSON, numbers exactly as in the summary.
std::string jsonl_record(std::uint64_t job, const sim::SimResult& result) {
  Json record = Json::object();
  record.set("job", Json(job));
  record.set("met", Json(result.met));
  record.set("reason", Json(sim::to_string(result.reason)));
  if (result.met) record.set("meet_time", Json(result.meet_time));
  record.set("events", Json(result.events));
  record.set("min_distance", Json(result.min_distance_seen));
  return record.dump() + "\n";
}

}  // namespace

agents::Instance campaign_instance(const ScenarioSpec& spec, std::uint64_t job) {
  AURV_CHECK_MSG(job < spec.total_jobs(), "campaign_instance: job out of range");
  const std::uint64_t sample = job / spec.replications;
  if (spec.sampler.empty()) return spec.grid[static_cast<std::size_t>(sample)];
  static thread_local std::string cached_sampler_name;
  static thread_local SamplerFn cached_sampler;
  if (cached_sampler_name != spec.sampler) {
    cached_sampler = resolve_sampler(spec.sampler);
    cached_sampler_name = spec.sampler;
  }
  // One independent, reproducible stream per sample: seeded by (campaign
  // seed, sample index), never by anything execution-order dependent.
  std::seed_seq seq{static_cast<std::uint32_t>(spec.seed), static_cast<std::uint32_t>(spec.seed >> 32),
                    static_cast<std::uint32_t>(sample), static_cast<std::uint32_t>(sample >> 32)};
  std::mt19937_64 rng(seq);
  return cached_sampler(rng, spec.ranges);
}

Json CampaignResult::summary(const ScenarioSpec& spec) const {
  Json json = Json::object();
  json.set("schema", Json(std::uint64_t{1}));
  json.set("kind", Json("campaign-summary"));
  json.set("scenario", spec.to_json());
  json.set("jobs", Json(jobs));
  json.set("complete", Json(complete));
  json.set("aggregate", aggregate.to_json());
  return json;
}

CampaignResult run_campaign(const ScenarioSpec& spec, const CampaignOptions& options) {
  const AlgorithmResolver resolver = resolve_algorithm(spec.algorithm);
  StreamRunResult<CampaignAggregate> stream = run_checkpointed_stream<CampaignAggregate>(
      "campaign-checkpoint", spec.fingerprint(), spec.total_jobs(), options,
      [&](std::uint64_t job, CampaignAggregate& aggregate, std::string* jsonl) {
        const agents::Instance instance = campaign_instance(spec, job);
        const sim::SimResult run = sim::Engine(instance, spec.engine).run(resolver(instance));
        aggregate.add(run);
        if (jsonl != nullptr) *jsonl += jsonl_record(job, run);
      });

  CampaignResult result;
  result.aggregate = std::move(stream.aggregate);
  result.jobs = stream.jobs;
  result.jobs_run = stream.jobs_run;
  result.resumed_shards = stream.resumed_shards;
  result.complete = stream.complete;
  return result;
}

}  // namespace aurv::exp
