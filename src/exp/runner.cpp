#include "exp/runner.hpp"

#include <algorithm>
#include <filesystem>
#include <map>
#include <mutex>
#include <random>
#include <stdexcept>

#include "exp/registry.hpp"
#include "support/check.hpp"
#include "support/jsonl.hpp"
#include "support/parallel.hpp"

namespace aurv::exp {

using support::Json;

namespace {

/// One line per run, compact JSON, numbers exactly as in the summary.
std::string jsonl_record(std::uint64_t job, const sim::SimResult& result) {
  Json record = Json::object();
  record.set("job", Json(job));
  record.set("met", Json(result.met));
  record.set("reason", Json(sim::to_string(result.reason)));
  if (result.met) record.set("meet_time", Json(result.meet_time));
  record.set("events", Json(result.events));
  record.set("min_distance", Json(result.min_distance_seen));
  return record.dump() + "\n";
}

struct CheckpointState {
  std::uint64_t completed_shards = 0;
  std::uint64_t jsonl_bytes = 0;
  CampaignAggregate aggregate;
};

Json checkpoint_to_json(const ScenarioSpec& spec, const CampaignOptions& options,
                        const CheckpointState& state) {
  Json json = Json::object();
  json.set("schema", Json(std::uint64_t{1}));
  json.set("kind", Json("campaign-checkpoint"));
  json.set("fingerprint", Json(support::fingerprint_hex(spec.fingerprint())));
  json.set("shard_size", Json(static_cast<std::uint64_t>(options.shard_size)));
  json.set("jsonl_path", Json(options.jsonl_path));
  json.set("completed_shards", Json(state.completed_shards));
  json.set("jsonl_bytes", Json(state.jsonl_bytes));
  json.set("aggregate", state.aggregate.to_json());
  return json;
}

CheckpointState checkpoint_from_json(const Json& json, const ScenarioSpec& spec,
                                     const CampaignOptions& options) {
  if (json.string_or("kind", "") != "campaign-checkpoint")
    throw std::invalid_argument("checkpoint: not a campaign-checkpoint file");
  if (json.at("fingerprint").as_string() != support::fingerprint_hex(spec.fingerprint()))
    throw std::invalid_argument(
        "checkpoint: scenario fingerprint mismatch (spec edited since the checkpoint "
        "was written; delete the checkpoint to start over)");
  if (json.at("shard_size").as_uint() != options.shard_size)
    throw std::invalid_argument("checkpoint: shard_size mismatch (resume with --shard-size " +
                                std::to_string(json.at("shard_size").as_uint()) + ")");
  if (json.at("jsonl_path").as_string() != options.jsonl_path)
    throw std::invalid_argument(
        "checkpoint: --jsonl path differs from the original run's (\"" +
        json.at("jsonl_path").as_string() + "\"); resuming would truncate the wrong file");
  CheckpointState state;
  state.completed_shards = json.at("completed_shards").as_uint();
  state.jsonl_bytes = json.at("jsonl_bytes").as_uint();
  state.aggregate = CampaignAggregate::from_json(json.at("aggregate"));
  return state;
}

}  // namespace

agents::Instance campaign_instance(const ScenarioSpec& spec, std::uint64_t job) {
  AURV_CHECK_MSG(job < spec.total_jobs(), "campaign_instance: job out of range");
  const std::uint64_t sample = job / spec.replications;
  if (spec.sampler.empty()) return spec.grid[static_cast<std::size_t>(sample)];
  static thread_local std::string cached_sampler_name;
  static thread_local SamplerFn cached_sampler;
  if (cached_sampler_name != spec.sampler) {
    cached_sampler = resolve_sampler(spec.sampler);
    cached_sampler_name = spec.sampler;
  }
  // One independent, reproducible stream per sample: seeded by (campaign
  // seed, sample index), never by anything execution-order dependent.
  std::seed_seq seq{static_cast<std::uint32_t>(spec.seed), static_cast<std::uint32_t>(spec.seed >> 32),
                    static_cast<std::uint32_t>(sample), static_cast<std::uint32_t>(sample >> 32)};
  std::mt19937_64 rng(seq);
  return cached_sampler(rng, spec.ranges);
}

Json CampaignResult::summary(const ScenarioSpec& spec) const {
  Json json = Json::object();
  json.set("schema", Json(std::uint64_t{1}));
  json.set("kind", Json("campaign-summary"));
  json.set("scenario", spec.to_json());
  json.set("jobs", Json(jobs));
  json.set("complete", Json(complete));
  json.set("aggregate", aggregate.to_json());
  return json;
}

CampaignResult run_campaign(const ScenarioSpec& spec, const CampaignOptions& options) {
  AURV_CHECK_MSG(options.shard_size >= 1, "shard_size must be >= 1");
  AURV_CHECK_MSG(options.checkpoint_every >= 1, "checkpoint_every must be >= 1");

  const std::uint64_t total_jobs = spec.total_jobs();
  AURV_CHECK_MSG(total_jobs >= 1, "campaign has no jobs");
  const std::uint64_t total_shards = (total_jobs + options.shard_size - 1) / options.shard_size;

  const AlgorithmResolver resolver = resolve_algorithm(spec.algorithm);

  CheckpointState state;  // completed prefix (empty unless resuming)
  if (options.resume && !options.checkpoint_path.empty() &&
      std::filesystem::exists(options.checkpoint_path)) {
    state = checkpoint_from_json(Json::load_file(options.checkpoint_path), spec, options);
    if (state.completed_shards > total_shards)
      throw std::invalid_argument("checkpoint: more shards than the campaign has");
  }

  CampaignResult result;
  result.jobs = total_jobs;
  result.resumed_shards = state.completed_shards;

  const std::uint64_t start_shard = state.completed_shards;
  std::uint64_t end_shard = total_shards;
  if (options.max_shards > 0)
    end_shard = std::min(end_shard, start_shard + options.max_shards);

  support::JsonlSink jsonl(options.jsonl_path,
                           start_shard > 0 ? state.jsonl_bytes : 0);

  struct ShardOutput {
    CampaignAggregate aggregate;
    std::string jsonl;
  };
  std::mutex stash_mutex;
  // Size bounded by the runner's max_in_flight window (set below), even
  // when one slow shard stalls the in-order drain while fast workers race
  // ahead — that bound is what keeps huge campaigns constant-memory.
  std::map<std::uint64_t, ShardOutput> stash;

  const bool want_jsonl = !options.jsonl_path.empty();
  const auto job_range = [&](std::uint64_t shard) {
    const std::uint64_t lo = shard * options.shard_size;
    const std::uint64_t hi = std::min<std::uint64_t>(total_jobs, lo + options.shard_size);
    return std::pair{lo, hi};
  };

  const auto body = [&](std::size_t local_shard) {
    const std::uint64_t shard = start_shard + local_shard;
    const auto [lo, hi] = job_range(shard);
    ShardOutput output;
    for (std::uint64_t job = lo; job < hi; ++job) {
      const agents::Instance instance = campaign_instance(spec, job);
      const sim::SimResult run =
          sim::Engine(instance, spec.engine).run(resolver(instance));
      output.aggregate.add(run);
      if (want_jsonl) output.jsonl += jsonl_record(job, run);
    }
    const std::scoped_lock lock(stash_mutex);
    stash.emplace(shard, std::move(output));
  };

  const auto complete = [&](std::size_t local_shard) {
    const std::uint64_t shard = start_shard + local_shard;
    ShardOutput output;
    {
      const std::scoped_lock lock(stash_mutex);
      const auto found = stash.find(shard);
      AURV_CHECK_MSG(found != stash.end(), "shard output missing at completion");
      output = std::move(found->second);
      stash.erase(found);
    }
    state.aggregate.merge(output.aggregate);
    jsonl.append(output.jsonl);
    state.completed_shards = shard + 1;
    state.jsonl_bytes = jsonl.bytes();
    if (!options.checkpoint_path.empty() &&
        ((shard + 1) % options.checkpoint_every == 0 || shard + 1 == total_shards)) {
      jsonl.flush();
      support::save_json_atomically(options.checkpoint_path,
                                    checkpoint_to_json(spec, options, state));
    }
    if (options.progress) {
      const auto [lo, hi] = job_range(shard);
      (void)lo;
      options.progress(hi, total_jobs);
    }
  };

  if (end_shard > start_shard) {
    support::ShardedRunOptions sharded;
    sharded.threads = options.threads;
    sharded.max_in_flight = 16;  // stash stays O(window), not O(total shards)
    support::run_sharded(static_cast<std::size_t>(end_shard - start_shard), body, complete,
                         sharded);
  }

  // If the run was cut short (max_shards) with checkpointing on, persist the
  // frontier even when it does not land on a checkpoint_every boundary, so
  // the next invocation resumes from exactly where this one stopped.
  result.complete = state.completed_shards == total_shards;
  if (!result.complete && !options.checkpoint_path.empty()) {
    jsonl.flush();
    support::save_json_atomically(options.checkpoint_path,
                                  checkpoint_to_json(spec, options, state));
  }

  result.aggregate = state.aggregate;
  const std::uint64_t start_jobs = std::min(total_jobs, start_shard * options.shard_size);
  const std::uint64_t done_jobs = state.completed_shards == total_shards
                                      ? total_jobs
                                      : state.completed_shards * options.shard_size;
  result.jobs_run = done_jobs - start_jobs;
  return result;
}

}  // namespace aurv::exp
