// Strict-parsing helpers shared by the declarative spec files (campaign
// ScenarioSpec / SearchSpec in exp/scenario.*, gathering GatherScenarioSpec
// in gatherx/scenario.*): unknown-key rejection, exact-rational fields that
// accept "a/b" strings or JSON numbers, the engine block, and the FNV-1a
// fingerprint over a spec's canonical serialization that checkpoints pin.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <stdexcept>
#include <string>
#include <string_view>

#include "numeric/rational.hpp"
#include "sim/engine.hpp"
#include "support/json.hpp"

namespace aurv::exp {

/// Strictness: every key of `json` must be in `allowed`; throws
/// std::invalid_argument naming the offender and its context otherwise.
inline void check_keys(const support::Json& json,
                       std::initializer_list<std::string_view> allowed, const char* context) {
  for (const auto& [key, value] : json.as_object()) {
    bool known = false;
    for (const std::string_view candidate : allowed) known = known || key == candidate;
    if (!known)
      throw std::invalid_argument(std::string("scenario: unknown key \"") + key + "\" in " +
                                  context);
  }
}

inline numeric::Rational rational_from(const support::Json& json, const char* what) {
  if (json.is_string()) return numeric::Rational::from_string(json.as_string());
  if (json.is_number()) return numeric::Rational::from_double(json.as_number());
  throw std::invalid_argument(std::string("scenario: ") + what +
                              " must be a number or a rational string");
}

inline support::Json rational_to(const numeric::Rational& value) {
  // Small integers render as JSON numbers (friendlier to read and edit);
  // everything else as an exact "num/den" string.
  const std::string text = value.to_string();
  if (text.find('/') == std::string::npos && text.size() <= 15) {
    return support::Json(static_cast<double>(std::stoll(text)));
  }
  return support::Json(text);
}

inline sim::EngineConfig engine_from(const support::Json& json) {
  check_keys(json, {"max_events", "contact_slack", "horizon", "r_a", "r_b"}, "engine");
  sim::EngineConfig config;
  config.max_events = json.uint_or("max_events", config.max_events);
  config.contact_slack = json.number_or("contact_slack", config.contact_slack);
  if (const support::Json* horizon = json.find("horizon");
      horizon != nullptr && !horizon->is_null())
    config.horizon = rational_from(*horizon, "horizon");
  if (const support::Json* r_a = json.find("r_a"); r_a != nullptr && !r_a->is_null())
    config.r_a = r_a->as_number();
  if (const support::Json* r_b = json.find("r_b"); r_b != nullptr && !r_b->is_null())
    config.r_b = r_b->as_number();
  // trace_capacity deliberately not exposed: a campaign recording traces
  // would not be constant-memory.
  return config;
}

inline support::Json engine_to(const sim::EngineConfig& config) {
  support::Json json = support::Json::object();
  json.set("max_events", support::Json(config.max_events));
  json.set("contact_slack", support::Json(config.contact_slack));
  if (config.horizon) json.set("horizon", rational_to(*config.horizon));
  if (config.r_a) json.set("r_a", support::Json(*config.r_a));
  if (config.r_b) json.set("r_b", support::Json(*config.r_b));
  return json;
}

/// FNV-1a 64 over the canonical serialization — what spec fingerprints are
/// made of; checkpoints store it so a resume against an edited spec is
/// refused instead of merging apples into oranges.
inline std::uint64_t fnv1a_fingerprint(const support::Json& json) {
  const std::string canonical = json.dump();
  std::uint64_t hash = 1469598103934665603ull;
  for (const char c : canonical) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

}  // namespace aurv::exp
