// CampaignRunner — executes a ScenarioSpec: a chunked work-queue of lazily
// generated jobs feeding streaming per-shard aggregators, merged
// deterministically in shard order.
//
// Design for "millions of runs in constant memory":
//
//   * jobs are never materialized: job j's instance is regenerated on
//     demand (sampler mode derives an RNG from std::seed_seq{seed, j /
//     replications}, so every job's stream is independent of execution
//     order and thread count; grid mode indexes the spec's instances);
//   * each shard (a contiguous chunk of job indices) accumulates its own
//     CampaignAggregate and, optionally, a JSONL buffer of per-run records;
//   * shards are merged/flushed strictly in shard order via
//     support::run_sharded's in-order completion hook — so the final
//     aggregate (including its floating-point sums), the JSONL file and
//     every checkpoint are bit-identical at any --threads value;
//   * a checkpoint (completed-shard prefix + serialized aggregate + JSONL
//     byte offset) is written every checkpoint_every shards; resuming
//     validates the spec fingerprint, truncates the JSONL file back to the
//     recorded offset and continues from the prefix — landing on the same
//     summary as an uninterrupted run.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "exp/aggregate.hpp"
#include "exp/scenario.hpp"
#include "support/json.hpp"

namespace aurv::exp {

struct CampaignOptions {
  /// 0 picks std::thread::hardware_concurrency().
  std::size_t threads = 0;

  /// Jobs per shard: the unit of claiming, aggregation, flushing and
  /// checkpointing. Must be >= 1.
  std::size_t shard_size = 256;

  /// Per-run JSONL records (one object per line, in job order). Empty = off.
  std::string jsonl_path;

  /// Checkpoint file enabling resume. Empty = off.
  std::string checkpoint_path;
  /// Write the checkpoint every this many completed shards (>= 1).
  std::size_t checkpoint_every = 64;

  /// Continue from checkpoint_path if it exists (fresh start otherwise).
  bool resume = false;

  /// Stop after flushing this many shards in *this* invocation (0 = run to
  /// the end). With a checkpoint this yields incremental execution; it is
  /// also how the tests interrupt a campaign mid-run deterministically.
  std::size_t max_shards = 0;

  /// Progress hook, called serialized and in order with (jobs_done,
  /// jobs_total) after each shard flush.
  std::function<void(std::uint64_t, std::uint64_t)> progress;
};

struct CampaignResult {
  CampaignAggregate aggregate;
  std::uint64_t jobs = 0;            ///< total jobs in the campaign
  std::uint64_t jobs_run = 0;        ///< jobs executed by this invocation
  std::uint64_t resumed_shards = 0;  ///< completed-shard prefix taken from a checkpoint
  bool complete = true;              ///< false when max_shards stopped the run early

  /// The summary artifact. Depends only on (spec, aggregate, complete) —
  /// not on thread count, timing, or how the run was split across
  /// checkpoint/resume cycles.
  [[nodiscard]] support::Json summary(const ScenarioSpec& spec) const;
};

/// Runs (or resumes) the campaign described by `spec`. Throws
/// std::invalid_argument for spec/option/checkpoint mismatches and
/// support::JsonError for unreadable artifacts; exceptions from simulation
/// jobs propagate with deterministic first-in-job-order semantics.
[[nodiscard]] CampaignResult run_campaign(const ScenarioSpec& spec,
                                          const CampaignOptions& options = {});

/// The instance job `j` of the campaign runs on (exposed for tests and the
/// CLI's `describe`; the runner itself generates instances lazily with this
/// exact function, which is what makes replays and resumes line up).
[[nodiscard]] agents::Instance campaign_instance(const ScenarioSpec& spec, std::uint64_t job);

}  // namespace aurv::exp
