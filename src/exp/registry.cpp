#include "exp/registry.hpp"

#include <stdexcept>
#include <utility>

#include "algo/boundary.hpp"
#include "algo/cgkk.hpp"
#include "algo/latecomers.hpp"
#include "algo/wait_and_search.hpp"
#include "core/almost_universal.hpp"
#include "core/feasibility.hpp"

namespace aurv::exp {

namespace {

sim::AlgorithmFactory boundary_factory(const agents::Instance& instance) {
  // Same dispatch as the CLI: S2 (and any synchronous chi = -1 instance,
  // whose dedicated algorithm is the S2 one) gets boundary_s2, the rest S1.
  const core::Classification c = core::classify(instance, 1e-9);
  if (c.kind == core::InstanceKind::BoundaryS2 ||
      (instance.is_synchronous() && instance.chi() == -1)) {
    return [instance] { return algo::boundary_s2_algorithm(instance); };
  }
  return [instance] { return algo::boundary_s1_algorithm(instance); };
}

struct AlgorithmEntry {
  const char* name;
  AlgorithmResolver resolver;
};

const std::vector<AlgorithmEntry>& algorithm_registry() {
  static const std::vector<AlgorithmEntry> registry = {
      {"aurv", [](const agents::Instance&) -> sim::AlgorithmFactory {
         return [] { return core::almost_universal_rv(); };
       }},
      {"latecomers", [](const agents::Instance&) -> sim::AlgorithmFactory {
         return [] { return algo::latecomers(); };
       }},
      {"cgkk", [](const agents::Instance&) -> sim::AlgorithmFactory {
         return [] { return algo::cgkk(); };
       }},
      {"cgkk-ext", [](const agents::Instance&) -> sim::AlgorithmFactory {
         return [] { return algo::cgkk_extended(); };
       }},
      {"wait-and-search", [](const agents::Instance&) -> sim::AlgorithmFactory {
         return [] { return algo::wait_and_search(); };
       }},
      {"boundary", boundary_factory},
      {"recommended", [](const agents::Instance& instance) {
         return core::recommended_algorithm(instance);
       }},
  };
  return registry;
}

struct SamplerEntry {
  const char* name;
  SamplerFn sampler;
};

const std::vector<SamplerEntry>& sampler_registry() {
  static const std::vector<SamplerEntry> registry = {
      {"type1", agents::sample_type1},
      {"type2", agents::sample_type2},
      {"type3", agents::sample_type3},
      {"type4", agents::sample_type4},
      {"boundary-s1", agents::sample_boundary_s1},
      {"boundary-s2", agents::sample_boundary_s2},
      {"infeasible", agents::sample_infeasible},
  };
  return registry;
}

struct GatherSamplerEntry {
  const char* name;
  GatherSamplerFn sampler;
};

const std::vector<GatherSamplerEntry>& gather_sampler_registry() {
  static const std::vector<GatherSamplerEntry> registry = {
      {"disk", agents::sample_gather_disk},
      {"cluster", agents::sample_gather_cluster},
      {"ring", agents::sample_gather_ring},
      {"spread", agents::sample_gather_spread},
  };
  return registry;
}

template <typename Entry, typename Value>
Value resolve(const std::vector<Entry>& registry, const std::string& name,
              Value Entry::*member, const char* what,
              const std::vector<std::string>& known) {
  for (const Entry& entry : registry) {
    if (name == entry.name) return entry.*member;
  }
  std::string message = std::string("unknown ") + what + " \"" + name + "\"; known: ";
  for (std::size_t k = 0; k < known.size(); ++k) {
    if (k != 0) message += ", ";
    message += known[k];
  }
  throw std::invalid_argument(message);
}

template <typename Entry>
std::vector<std::string> names_of(const std::vector<Entry>& registry) {
  std::vector<std::string> names;
  names.reserve(registry.size());
  for (const Entry& entry : registry) names.emplace_back(entry.name);
  return names;
}

}  // namespace

AlgorithmResolver resolve_algorithm(const std::string& name) {
  return resolve(algorithm_registry(), name, &AlgorithmEntry::resolver, "algorithm",
                 algorithm_names());
}

SamplerFn resolve_sampler(const std::string& name) {
  return resolve(sampler_registry(), name, &SamplerEntry::sampler, "sampler", sampler_names());
}

GatherSamplerFn resolve_gather_sampler(const std::string& name) {
  return resolve(gather_sampler_registry(), name, &GatherSamplerEntry::sampler,
                 "gather sampler", gather_sampler_names());
}

sim::AlgorithmFactory resolve_common_algorithm(const std::string& name) {
  if (name == "boundary" || name == "recommended")
    throw std::invalid_argument(
        "algorithm \"" + name +
        "\" dispatches on the two-agent instance under test; gathering runs execute one "
        "common program on every agent — use aurv, latecomers, cgkk, cgkk-ext or "
        "wait-and-search");
  // The remaining entries ignore their instance argument, so any probe works.
  static const agents::Instance probe =
      agents::Instance::synchronous(1.0, {2.0, 0.0}, 0.0, 1, +1);
  return resolve_algorithm(name)(probe);
}

const std::vector<std::string>& algorithm_names() {
  static const std::vector<std::string> names = names_of(algorithm_registry());
  return names;
}

const std::vector<std::string>& sampler_names() {
  static const std::vector<std::string> names = names_of(sampler_registry());
  return names;
}

const std::vector<std::string>& gather_sampler_names() {
  static const std::vector<std::string> names = names_of(gather_sampler_registry());
  return names;
}

}  // namespace aurv::exp
