#include "exp/aggregate.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace aurv::exp {

using support::Json;

int meet_time_bucket(double meet_time) {
  if (!(meet_time > 0.0)) return 0;
  const int k = static_cast<int>(std::floor(std::log2(meet_time))) +
                CampaignAggregate::kHistogramOffset;
  return std::clamp(k, 0, CampaignAggregate::kHistogramBuckets - 1);
}

void CampaignAggregate::add(const sim::SimResult& result) {
  if (runs == 0) {
    min_distance_floor = result.min_distance_seen;
  } else {
    min_distance_floor = std::min(min_distance_floor, result.min_distance_seen);
  }
  ++runs;
  ++stop_reasons[static_cast<std::size_t>(result.reason)];
  total_events += result.events;
  max_events = std::max(max_events, result.events);
  if (result.met) {
    if (met == 0) {
      meet_time_min = result.meet_time;
      meet_time_max = result.meet_time;
    } else {
      meet_time_min = std::min(meet_time_min, result.meet_time);
      meet_time_max = std::max(meet_time_max, result.meet_time);
    }
    ++met;
    meet_time_sum += result.meet_time;
    ++meet_time_histogram[static_cast<std::size_t>(meet_time_bucket(result.meet_time))];
  }
}

void CampaignAggregate::merge(const CampaignAggregate& other) {
  if (other.runs == 0) return;
  if (runs == 0) {
    *this = other;
    return;
  }
  min_distance_floor = std::min(min_distance_floor, other.min_distance_floor);
  runs += other.runs;
  for (std::size_t k = 0; k < stop_reasons.size(); ++k) stop_reasons[k] += other.stop_reasons[k];
  total_events += other.total_events;
  max_events = std::max(max_events, other.max_events);
  if (other.met > 0) {
    if (met == 0) {
      meet_time_min = other.meet_time_min;
      meet_time_max = other.meet_time_max;
    } else {
      meet_time_min = std::min(meet_time_min, other.meet_time_min);
      meet_time_max = std::max(meet_time_max, other.meet_time_max);
    }
    met += other.met;
    meet_time_sum += other.meet_time_sum;
    for (std::size_t k = 0; k < meet_time_histogram.size(); ++k)
      meet_time_histogram[k] += other.meet_time_histogram[k];
  }
}

double histogram_percentile(
    const std::array<std::uint64_t, CampaignAggregate::kHistogramBuckets>& histogram,
    std::uint64_t count, double p, double fallback_max) {
  AURV_CHECK_MSG(p >= 0.0 && p <= 1.0, "percentile out of [0, 1]");
  if (count == 0) return 0.0;
  // Rank of the p-quantile, 1-based, ceil convention.
  const auto rank =
      static_cast<std::uint64_t>(std::max(1.0, std::ceil(p * static_cast<double>(count))));
  std::uint64_t seen = 0;
  for (int k = 0; k < CampaignAggregate::kHistogramBuckets; ++k) {
    seen += histogram[static_cast<std::size_t>(k)];
    if (seen >= rank)
      return std::ldexp(1.0, k - CampaignAggregate::kHistogramOffset + 1);  // bucket upper edge
  }
  return fallback_max;
}

double CampaignAggregate::meet_time_percentile(double p) const {
  return histogram_percentile(meet_time_histogram, met, p, meet_time_max);
}

Json CampaignAggregate::to_json() const {
  Json json = Json::object();
  json.set("runs", Json(runs));
  json.set("met", Json(met));
  json.set("meet_rate", Json(meet_rate()));
  Json reasons = Json::object();
  for (std::size_t k = 0; k < stop_reasons.size(); ++k) {
    reasons.set(sim::to_string(static_cast<sim::StopReason>(k)), Json(stop_reasons[k]));
  }
  json.set("stop_reasons", std::move(reasons));
  json.set("total_events", Json(total_events));
  json.set("max_events", Json(max_events));
  json.set("meet_time_sum", Json(meet_time_sum));
  json.set("meet_time_min", Json(meet_time_min));
  json.set("meet_time_max", Json(meet_time_max));
  json.set("meet_time_p50", Json(meet_time_percentile(0.50)));
  json.set("meet_time_p95", Json(meet_time_percentile(0.95)));
  json.set("meet_time_p99", Json(meet_time_percentile(0.99)));
  Json histogram = Json::array();
  for (const std::uint64_t count : meet_time_histogram) histogram.push_back(Json(count));
  json.set("meet_time_histogram", std::move(histogram));
  json.set("min_distance_floor", Json(min_distance_floor));
  return json;
}

CampaignAggregate CampaignAggregate::from_json(const Json& json) {
  CampaignAggregate aggregate;
  aggregate.runs = json.at("runs").as_uint();
  aggregate.met = json.at("met").as_uint();
  const Json& reasons = json.at("stop_reasons");
  for (std::size_t k = 0; k < aggregate.stop_reasons.size(); ++k) {
    aggregate.stop_reasons[k] =
        reasons.at(sim::to_string(static_cast<sim::StopReason>(k))).as_uint();
  }
  aggregate.total_events = json.at("total_events").as_uint();
  aggregate.max_events = json.at("max_events").as_uint();
  aggregate.meet_time_sum = json.at("meet_time_sum").as_number();
  aggregate.meet_time_min = json.at("meet_time_min").as_number();
  aggregate.meet_time_max = json.at("meet_time_max").as_number();
  const Json::Array& histogram = json.at("meet_time_histogram").as_array();
  AURV_CHECK_MSG(histogram.size() == aggregate.meet_time_histogram.size(),
                 "histogram size mismatch in checkpoint");
  for (std::size_t k = 0; k < histogram.size(); ++k)
    aggregate.meet_time_histogram[k] = histogram[k].as_uint();
  aggregate.min_distance_floor = json.at("min_distance_floor").as_number();
  return aggregate;
}

}  // namespace aurv::exp
