#include "exp/scenario.hpp"

#include <stdexcept>
#include <utility>

#include "exp/registry.hpp"
#include "exp/spec_util.hpp"
#include "support/check.hpp"

namespace aurv::exp {

using support::Json;

namespace {

agents::Instance instance_from(const Json& json) {
  check_keys(json, {"r", "x", "y", "phi", "tau", "v", "t", "chi"}, "grid instance");
  return agents::Instance(
      json.at("r").as_number(),
      geom::Vec2{json.at("x").as_number(), json.at("y").as_number()},
      json.number_or("phi", 0.0),
      json.find("tau") != nullptr ? rational_from(json.at("tau"), "tau") : numeric::Rational(1),
      json.find("v") != nullptr ? rational_from(json.at("v"), "v") : numeric::Rational(1),
      json.find("t") != nullptr ? rational_from(json.at("t"), "t") : numeric::Rational(0),
      static_cast<int>(json.at("chi").as_int()));
}

Json instance_to(const agents::Instance& instance) {
  Json json = Json::object();
  json.set("r", Json(instance.r()));
  json.set("x", Json(instance.b_start().x));
  json.set("y", Json(instance.b_start().y));
  json.set("phi", Json(instance.phi()));
  json.set("tau", rational_to(instance.tau()));
  json.set("v", rational_to(instance.v()));
  json.set("t", rational_to(instance.t()));
  json.set("chi", Json(instance.chi()));
  return json;
}

agents::SamplerRanges ranges_from(const Json& json) {
  check_keys(json, {"r_min", "r_max", "dist_min", "dist_max", "margin_min", "margin_max"},
             "source.ranges");
  agents::SamplerRanges ranges;
  ranges.r_min = json.number_or("r_min", ranges.r_min);
  ranges.r_max = json.number_or("r_max", ranges.r_max);
  ranges.dist_min = json.number_or("dist_min", ranges.dist_min);
  ranges.dist_max = json.number_or("dist_max", ranges.dist_max);
  ranges.margin_min = json.number_or("margin_min", ranges.margin_min);
  ranges.margin_max = json.number_or("margin_max", ranges.margin_max);
  return ranges;
}

Json ranges_to(const agents::SamplerRanges& ranges) {
  Json json = Json::object();
  json.set("r_min", Json(ranges.r_min));
  json.set("r_max", Json(ranges.r_max));
  json.set("dist_min", Json(ranges.dist_min));
  json.set("dist_max", Json(ranges.dist_max));
  json.set("margin_min", Json(ranges.margin_min));
  json.set("margin_max", Json(ranges.margin_max));
  return json;
}

}  // namespace

std::uint64_t ScenarioSpec::total_jobs() const {
  const std::uint64_t instances = instance_count();
  AURV_CHECK_MSG(replications == 0 || instances <= UINT64_MAX / replications,
                 "scenario: count x replications overflows");
  return instances * replications;
}

ScenarioSpec ScenarioSpec::from_json(const Json& json) {
  check_keys(json,
             {"schema", "name", "description", "algorithm", "seed", "replications", "source",
              "engine"},
             "scenario");
  const std::uint64_t schema = json.uint_or("schema", 1);
  if (schema != 1)
    throw std::invalid_argument("scenario: unsupported schema " + std::to_string(schema));

  ScenarioSpec spec;
  spec.name = json.string_or("name", "");
  spec.description = json.string_or("description", "");
  spec.algorithm = json.string_or("algorithm", "aurv");
  spec.seed = json.uint_or("seed", 0);
  spec.replications = json.uint_or("replications", 1);
  if (spec.replications == 0)
    throw std::invalid_argument("scenario: replications must be >= 1");

  const Json& source = json.at("source");
  const bool has_sampler = source.find("sampler") != nullptr;
  const bool has_grid = source.find("grid") != nullptr;
  if (has_sampler == has_grid)
    throw std::invalid_argument(
        "scenario: source requires exactly one of \"sampler\" or \"grid\"");
  if (has_sampler) {
    check_keys(source, {"sampler", "count", "ranges"}, "source");
    spec.sampler = source.at("sampler").as_string();
    spec.count = source.at("count").as_uint();
    if (spec.count == 0) throw std::invalid_argument("scenario: source.count must be >= 1");
    if (const Json* ranges = source.find("ranges")) spec.ranges = ranges_from(*ranges);
  } else {
    check_keys(source, {"grid"}, "source");
    for (const Json& entry : source.at("grid").as_array()) spec.grid.push_back(instance_from(entry));
    if (spec.grid.empty()) throw std::invalid_argument("scenario: source.grid is empty");
  }

  if (const Json* engine = json.find("engine")) spec.engine = engine_from(*engine);

  // Fail at load time, not at job 0: both names must resolve.
  (void)resolve_algorithm(spec.algorithm);
  if (!spec.sampler.empty()) (void)resolve_sampler(spec.sampler);
  return spec;
}

Json ScenarioSpec::to_json() const {
  Json json = Json::object();
  json.set("schema", Json(std::uint64_t{1}));
  json.set("name", Json(name));
  if (!description.empty()) json.set("description", Json(description));
  json.set("algorithm", Json(algorithm));
  json.set("seed", Json(seed));
  json.set("replications", Json(replications));
  Json source = Json::object();
  if (!sampler.empty()) {
    source.set("sampler", Json(sampler));
    source.set("count", Json(count));
    source.set("ranges", ranges_to(ranges));
  } else {
    Json grid_json = Json::array();
    for (const agents::Instance& instance : grid) grid_json.push_back(instance_to(instance));
    source.set("grid", std::move(grid_json));
  }
  json.set("source", std::move(source));
  json.set("engine", engine_to(engine));
  return json;
}

ScenarioSpec ScenarioSpec::load(const std::string& path) {
  try {
    return from_json(Json::load_file(path));
  } catch (const std::exception& error) {
    throw std::invalid_argument(path + ": " + error.what());
  }
}

void ScenarioSpec::save(const std::string& path) const { to_json().save_file(path); }

std::uint64_t ScenarioSpec::fingerprint() const { return fnv1a_fingerprint(to_json()); }

// -------------------------------------------------------------- SearchSpec --

SearchSpec SearchSpec::from_json(const Json& json) {
  check_keys(json,
             {"schema", "kind", "name", "description", "algorithm", "objective", "space",
              "budget", "engine"},
             "search spec");
  const std::uint64_t schema = json.uint_or("schema", 1);
  if (schema != 1)
    throw std::invalid_argument("search spec: unsupported schema " + std::to_string(schema));
  if (json.string_or("kind", "") != "search")
    throw std::invalid_argument("search spec: \"kind\" must be \"search\"");

  SearchSpec spec;
  spec.name = json.string_or("name", "");
  spec.description = json.string_or("description", "");
  spec.algorithm = json.string_or("algorithm", "aurv");
  spec.objective = json.string_or("objective", "max-meet-time");

  const Json& space = json.at("space");
  check_keys(space, {"family", "chi", "fixed", "box"}, "space");
  spec.space.family = search::SearchSpace::family_from_string(space.at("family").as_string());
  if (const Json* chi = space.find("chi")) {
    if (spec.space.family != search::SearchSpace::Family::Tuple)
      throw std::invalid_argument(
          "search spec: space.chi only applies to the tuple family (boundary families pin "
          "it)");
    spec.space.chi = static_cast<int>(chi->as_int());
  }
  if (const Json* fixed = space.find("fixed")) {
    for (const auto& [name, value] : fixed->as_object())
      spec.space.fixed.emplace_back(name, rational_from(value, name.c_str()));
  }
  for (const auto& [name, ends] : space.at("box").as_object()) {
    const Json::Array& pair = ends.as_array();
    if (pair.size() != 2)
      throw std::invalid_argument("search spec: space.box." + name +
                                  " must be a [lo, hi] pair");
    spec.space.dim_names.push_back(name);
    spec.box.push_back(search::Interval{rational_from(pair[0], name.c_str()),
                                        rational_from(pair[1], name.c_str())});
    if (spec.box.back().lo > spec.box.back().hi)
      throw std::invalid_argument("search spec: space.box." + name + " has lo > hi");
  }
  spec.space.validate();

  if (const Json* budget = json.find("budget")) {
    check_keys(*budget, {"max_boxes", "wave_size", "min_width", "min_improvement"}, "budget");
    spec.limits.max_boxes = budget->uint_or("max_boxes", spec.limits.max_boxes);
    spec.limits.wave_size = budget->uint_or("wave_size", spec.limits.wave_size);
    if (const Json* width = budget->find("min_width"))
      spec.limits.min_width = rational_from(*width, "min_width");
    spec.limits.min_improvement =
        budget->number_or("min_improvement", spec.limits.min_improvement);
    if (spec.limits.max_boxes == 0)
      throw std::invalid_argument("search spec: budget.max_boxes must be >= 1");
    if (spec.limits.wave_size == 0)
      throw std::invalid_argument("search spec: budget.wave_size must be >= 1");
    if (spec.limits.min_width.is_negative())
      throw std::invalid_argument("search spec: budget.min_width must be >= 0");
  }

  if (const Json* engine = json.find("engine")) spec.engine = engine_from(*engine);

  // Fail at load time, not at box 0: the algorithm must resolve (as a
  // common program for gather-tuple) and the objective must accept the
  // space (e.g. boundary-distance rejects non-synchronous tuple spaces).
  (void)search::make_objective(spec.objective, spec.space, search_algorithm_resolver(spec),
                               spec.engine);
  if (spec.space.family == search::SearchSpace::Family::GatherTuple) {
    // The gather point-to-chain mapping throws on negative delays and the
    // engine on r <= 0 — refuse such boxes here rather than from a worker
    // shard halfway through the search.
    const search::ParamBox root = spec.root_box();
    if (spec.space.param_interval("delay", root).lo.is_negative())
      throw std::invalid_argument(
          "search spec: gather-tuple delay must be >= 0 over the whole box (wake-up "
          "times are nonnegative by model)");
    if (spec.space.param_interval("r", root).lo.sign() <= 0)
      throw std::invalid_argument(
          "search spec: gather-tuple r must be positive over the whole box");
  }
  return spec;
}

search::AlgorithmResolverFn search_algorithm_resolver(const SearchSpec& spec) {
  if (spec.space.family == search::SearchSpace::Family::GatherTuple) {
    sim::AlgorithmFactory common = resolve_common_algorithm(spec.algorithm);
    return [common = std::move(common)](const agents::Instance&) { return common; };
  }
  return resolve_algorithm(spec.algorithm);
}

Json SearchSpec::to_json() const {
  Json json = Json::object();
  json.set("schema", Json(std::uint64_t{1}));
  json.set("kind", Json("search"));
  json.set("name", Json(name));
  if (!description.empty()) json.set("description", Json(description));
  json.set("algorithm", Json(algorithm));
  json.set("objective", Json(objective));
  Json space_json = Json::object();
  space_json.set("family", Json(search::SearchSpace::to_string(space.family)));
  if (space.family == search::SearchSpace::Family::Tuple)
    space_json.set("chi", Json(space.chi));
  if (!space.fixed.empty()) {
    Json fixed_json = Json::object();
    for (const auto& [fixed_name, value] : space.fixed)
      fixed_json.set(fixed_name, rational_to(value));
    space_json.set("fixed", std::move(fixed_json));
  }
  Json box_json = Json::object();
  for (std::size_t k = 0; k < space.dim_names.size(); ++k) {
    Json pair = Json::array();
    pair.push_back(rational_to(box[k].lo));
    pair.push_back(rational_to(box[k].hi));
    box_json.set(space.dim_names[k], std::move(pair));
  }
  space_json.set("box", std::move(box_json));
  json.set("space", std::move(space_json));
  Json budget = Json::object();
  budget.set("max_boxes", Json(limits.max_boxes));
  budget.set("wave_size", Json(limits.wave_size));
  budget.set("min_width", rational_to(limits.min_width));
  budget.set("min_improvement", Json(limits.min_improvement));
  json.set("budget", std::move(budget));
  json.set("engine", engine_to(engine));
  return json;
}

SearchSpec SearchSpec::load(const std::string& path) {
  try {
    return from_json(Json::load_file(path));
  } catch (const std::exception& error) {
    throw std::invalid_argument(path + ": " + error.what());
  }
}

void SearchSpec::save(const std::string& path) const { to_json().save_file(path); }

std::uint64_t SearchSpec::fingerprint() const { return fnv1a_fingerprint(to_json()); }

}  // namespace aurv::exp
