// Name registries: the bridge that turns campaigns into *data*.
//
// A scenario spec names its algorithm and its instance sampler as strings;
// these registries resolve them to the library's factories. Algorithms
// resolve to an instance-aware resolver because two entries ("boundary",
// "recommended") pick their program from the instance under test; the
// instance-independent ones ignore the argument.
#pragma once

#include <functional>
#include <random>
#include <string>
#include <vector>

#include "agents/gather_sampler.hpp"
#include "agents/instance.hpp"
#include "agents/sampler.hpp"
#include "sim/engine.hpp"

namespace aurv::exp {

/// Builds the AlgorithmFactory to run on `instance`.
using AlgorithmResolver = std::function<sim::AlgorithmFactory(const agents::Instance&)>;

/// Draws one instance from a region of the Theorem 3.1 characterization.
using SamplerFn = std::function<agents::Instance(std::mt19937_64&,
                                                 const agents::SamplerRanges&)>;

/// Draws one n-agent gathering configuration (gatherx censuses).
using GatherSamplerFn = std::function<agents::GatherInstance(std::mt19937_64&,
                                                             const agents::GatherSamplerRanges&)>;

/// Resolve by name; throws std::invalid_argument listing the known names on
/// a miss.
[[nodiscard]] AlgorithmResolver resolve_algorithm(const std::string& name);
[[nodiscard]] SamplerFn resolve_sampler(const std::string& name);
[[nodiscard]] GatherSamplerFn resolve_gather_sampler(const std::string& name);

/// Resolves an algorithm that does not look at the instance under test —
/// the only kind the gathering pipelines accept, because every agent of a
/// gathering run executes the *common* program and there is no two-agent
/// instance to dispatch on. Throws std::invalid_argument for the
/// instance-aware entries ("boundary", "recommended") and for unknown names.
[[nodiscard]] sim::AlgorithmFactory resolve_common_algorithm(const std::string& name);

/// Registered names, in registry (presentation) order.
[[nodiscard]] const std::vector<std::string>& algorithm_names();
[[nodiscard]] const std::vector<std::string>& sampler_names();
[[nodiscard]] const std::vector<std::string>& gather_sampler_names();

}  // namespace aurv::exp
