#include "exp/search_driver.hpp"

#include "exp/registry.hpp"
#include "search/objective.hpp"
#include "support/jsonl.hpp"

namespace aurv::exp {

using support::Json;

Json SearchRunResult::certificate(const SearchSpec& spec) const {
  Json json = Json::object();
  json.set("schema", Json(std::uint64_t{1}));
  json.set("kind", Json("search-certificate"));
  json.set("scenario", spec.to_json());
  json.set("search", bnb.to_json());
  return json;
}

SearchRunResult run_search(const SearchSpec& spec, const SearchOptions& options) {
  const std::unique_ptr<search::Objective> objective = search::make_objective(
      spec.objective, spec.space, search_algorithm_resolver(spec), spec.engine);

  search::BnbOptions bnb_options;
  bnb_options.max_shards = options.max_shards;
  bnb_options.incumbent_log_path = options.incumbent_log_path;
  bnb_options.provenance_path = options.provenance_path;
  bnb_options.checkpoint_path = options.checkpoint_path;
  bnb_options.checkpoint_every = options.checkpoint_every;
  bnb_options.resume = options.resume;
  bnb_options.spill_dir = options.spill_dir;
  bnb_options.frontier_mem = options.frontier_mem;
  bnb_options.spill_max_segments = options.spill_max_segments;
  bnb_options.frontier_degraded_capacity = options.frontier_degraded_capacity;
  bnb_options.max_waves = options.max_waves;
  bnb_options.fingerprint = support::fingerprint_hex(spec.fingerprint());
  bnb_options.dim_names = spec.space.dim_names;
  bnb_options.progress = options.progress;

  SearchRunResult result;
  result.bnb = search::run_bnb(spec.root_box(), *objective, spec.limits, bnb_options);
  return result;
}

}  // namespace aurv::exp
