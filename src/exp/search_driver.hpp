// Executes a SearchSpec: resolves the algorithm and the objective from the
// registries, roots the canonical refinement tree at the spec's box and
// drives search::run_bnb, wrapping the outcome into the search-certificate
// artifact.
//
// The certificate depends only on the spec: it is byte-identical at any
// --max-shards value and byte-identical whether the search ran in one go
// or across checkpoint/resume cycles — the same guarantee the campaign
// runner gives for summaries, extended to branch-and-bound.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "exp/scenario.hpp"
#include "search/bnb.hpp"
#include "support/json.hpp"

namespace aurv::exp {

struct SearchOptions {
  /// Worker cap per wave (0 = hardware). Never changes the result.
  std::size_t max_shards = 0;

  /// JSONL stream of incumbent improvements, in deterministic order.
  std::string incumbent_log_path;

  /// Opt-in prune-provenance JSONL stream (see BnbOptions::provenance_path):
  /// one auditable decision record per popped box, byte-identical at any
  /// worker count and across resume; scripts/provenance_report.py audits
  /// it against the certificate. Empty = off.
  std::string provenance_path;

  /// Base-checkpoint file enabling resume (a per-wave delta journal rides
  /// beside it). Empty = off.
  std::string checkpoint_path;
  /// Waves between journal compactions into a fresh base checkpoint.
  std::size_t checkpoint_every = 16;
  bool resume = false;

  /// Spill-to-disk frontier (invocation-side: never changes the
  /// certificate). Empty spill_dir = fully in-memory frontier.
  std::string spill_dir;
  /// Max open boxes held in memory (0 = unbounded; nonzero needs spill_dir).
  std::size_t frontier_mem = 0;
  /// Open segment-file cap before spilled runs are k-way-merged.
  std::size_t spill_max_segments = 8;
  /// Hot-frontier bound while the spill store is degraded (dir unwritable
  /// or full); 0 = unbounded in-memory fallback. See BnbOptions.
  std::size_t frontier_degraded_capacity = 0;

  /// Stop after this many waves in *this* invocation (0 = run to the end).
  std::size_t max_waves = 0;

  /// Progress hook: (boxes_evaluated, open_boxes) after each wave.
  std::function<void(std::uint64_t, std::uint64_t)> progress;
};

struct SearchRunResult {
  search::BnbResult bnb;

  /// The certificate artifact:
  ///   { "schema": 1, "kind": "search-certificate",
  ///     "scenario": <spec>, "search": <incumbent/stats/frontier residual> }
  [[nodiscard]] support::Json certificate(const SearchSpec& spec) const;
};

/// Runs (or resumes) the search described by `spec`. Throws
/// std::invalid_argument for spec/option/checkpoint mismatches and
/// support::JsonError for unreadable artifacts.
[[nodiscard]] SearchRunResult run_search(const SearchSpec& spec,
                                         const SearchOptions& options = {});

}  // namespace aurv::exp
