#include "algo/boundary.hpp"

#include <cmath>
#include <vector>

#include "geom/angle.hpp"
#include "geom/canonical_line.hpp"
#include "program/combinators.hpp"
#include "support/check.hpp"

namespace aurv::algo {

using numeric::Rational;
using program::Instruction;
using program::Program;

Program boundary_s1_algorithm(const agents::Instance& instance) {
  AURV_CHECK_MSG(instance.is_synchronous() && instance.chi() == 1 && instance.phi() == 0.0,
                 "boundary_s1_algorithm: requires synchronous, chi=+1, phi=0");
  const double d = instance.initial_distance();
  AURV_CHECK_MSG(instance.t_d() >= d - instance.r() - 1e-12,
                 "boundary_s1_algorithm: requires t >= dist - r (feasibility, Lemma 3.8)");
  std::vector<Instruction> moves;
  if (d > instance.r()) {
    const geom::Vec2 target = instance.b_start();
    const double heading = std::atan2(target.y, target.x);
    moves.push_back(program::go(heading, Rational::from_double(d - instance.r())));
  }
  return program::replay(std::move(moves));
}

Program boundary_s2_algorithm(const agents::Instance& instance) {
  AURV_CHECK_MSG(instance.is_synchronous() && instance.chi() == -1,
                 "boundary_s2_algorithm: requires synchronous, chi=-1");
  const double dp = instance.projection_distance();
  AURV_CHECK_MSG(instance.t_d() >= dp - instance.r() - 1e-12,
                 "boundary_s2_algorithm: requires t >= dist(projA,projB) - r (Lemma 3.9)");
  // The canonical line has the same equation in both private systems
  // (Lemma 3.9 / the reflection symmetry of chi = -1 instances), so each
  // agent computes it from the common tuple in its own coordinates.
  const geom::Line line = geom::canonical_line(instance.b_start(), instance.phi());
  const geom::Vec2 foot = line.project(geom::Vec2{0.0, 0.0});

  std::vector<Instruction> moves;
  const double reach = foot.norm();
  if (reach > 0.0) {
    moves.push_back(program::go(std::atan2(foot.y, foot.x), Rational::from_double(reach)));
  }
  if (instance.t().sign() > 0) {
    // North/South of the local system Rot((phi+pi)/2): headings offset by
    // (phi+pi)/2 from the local axes. Both agents' Norths agree along L.
    const double rot = (instance.phi() + geom::kPi) / 2.0;
    moves.push_back(program::go(rot + geom::kPi / 2.0, instance.t()));
    moves.push_back(program::go(rot + 3.0 * geom::kPi / 2.0, instance.t()));
  }
  return program::replay(std::move(moves));
}

}  // namespace aurv::algo
