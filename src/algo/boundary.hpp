// Dedicated per-instance algorithms for the two exception sets S1 and S2 —
// the instances AlmostUniversalRV provably cannot cover (Section 4), yet
// which are individually feasible (the boundary cases of Lemmas 3.8/3.9).
// Unlike AlmostUniversalRV, these algorithms receive the instance tuple as
// input; they still respect anonymity (both agents run the same program and
// do not know which agent of the tuple they are).
#pragma once

#include "agents/instance.hpp"
#include "program/instruction.hpp"

namespace aurv::algo {

/// Dedicated algorithm for S1 instances: synchronous, chi = +1, phi = 0,
/// t = dist((0,0),(x,y)) - r. Each agent moves distance dist - r in its
/// local direction of (x,y) (the frames are shifts of each other, so both
/// move in the same absolute direction); the earlier agent reaches distance
/// exactly r from the still-sleeping later agent at the instant t it wakes.
/// Requires a synchronous chi=+1, phi=0 instance with t >= dist - r
/// (checked); works for the whole closed region, boundary included.
[[nodiscard]] program::Program boundary_s1_algorithm(const agents::Instance& instance);

/// Dedicated algorithm for S2 instances (Lemma 3.9's construction):
/// synchronous, chi = -1, t = dist(projA, projB) - r. Each agent computes
/// the canonical line L of the tuple (same equation in both private
/// systems), moves to the orthogonal projection of its origin onto L, then
/// in the local system Rot((phi+pi)/2) goes North t and South t — both
/// agents' rotated Norths coincide along L because chi = -1.
/// Requires a synchronous chi=-1 instance with t >= dist(projA,projB) - r
/// (checked); works for the whole closed region, boundary included.
[[nodiscard]] program::Program boundary_s2_algorithm(const agents::Instance& instance);

}  // namespace aurv::algo
