// Latecomers — our reimplementation of GATHER(2) from [38] (Pelc & Yadav,
// "Latecomers Help to Meet", ICDCN 2020), which the paper imports as a black
// box (Section 2). Contract it must satisfy (and the paper relies on):
// rendezvous for every synchronous instance with phi = 0, chi = 1 and
// t > dist((0,0),(x,y)) - r.
//
// Construction (see DESIGN.md "Substituted components" for the proof
// sketch): for phase i = 1, 2, ... and every direction theta = k*pi/2^i,
// k = 0..2^(i+1)-1, walk straight out to distance 2^i and straight back.
// With identical shifted frames the later agent replays the earlier one's
// trajectory delayed by t, so over a single out-and-back trip the
// displacement-over-window-t sweeps continuously through every magnitude in
// [-t, t] along the trip direction; a direction within pi/2^i of the offset
// (x,y) then brings the agents within |dist - t| + dist*pi/2^i <= r once i
// is large enough — exactly when t > dist - r.
#pragma once

#include "program/instruction.hpp"

namespace aurv::algo {

/// The infinite Latecomers program.
[[nodiscard]] program::Program latecomers();

/// Local duration of phase i of latecomers: 2^(i+1) trips of length 2^(i+1).
[[nodiscard]] numeric::Rational latecomers_phase_duration(std::uint32_t i);

}  // namespace aurv::algo
