// WaitAndSearch — the type-3 strategy of Algorithm 1 (Lemma 3.4) packaged
// as a standalone procedure: in phase i wait 2^(15 i^2) local time units,
// then run PlanarCowWalk(i).
//
// When the agents' clock rates differ (tau != 1) the waits desynchronize
// them: by the phase bound of Lemma 3.4 the faster-clocked agent executes
// an entire planar search while the slower one is still waiting at its
// start, and the search covers the slower agent's position. Exposed
// standalone because it solves every tau != 1 instance (any delay t) by
// itself, which the TAB-2 experiments exercise.
#pragma once

#include "program/instruction.hpp"

namespace aurv::algo {

[[nodiscard]] program::Program wait_and_search();

/// The wait length of phase i: 2^(15 i^2) local time units.
[[nodiscard]] numeric::Rational wait_and_search_pause(std::uint32_t i);

}  // namespace aurv::algo
