#include "algo/latecomers.hpp"

#include "geom/angle.hpp"
#include "support/check.hpp"

namespace aurv::algo {

using numeric::Rational;
using program::Program;

Program latecomers() {
  for (std::uint32_t i = 1;; ++i) {
    AURV_CHECK_MSG(i <= 62, "latecomers: phase index overflow");
    const Rational reach = Rational::pow2(i);
    const std::uint64_t directions = std::uint64_t{1} << (i + 1);  // 2^(i+1)
    for (std::uint64_t k = 0; k < directions; ++k) {
      const double theta = geom::dyadic_angle(static_cast<std::int64_t>(k), i);
      const program::Instruction out = program::go(theta, reach);
      const program::Instruction back = program::go(theta + geom::kPi, reach);
      co_yield out;
      co_yield back;
    }
  }
}

Rational latecomers_phase_duration(std::uint32_t i) {
  // 2^(i+1) directions, each an out-and-back of 2 * 2^i time units.
  return Rational::pow2(i + 1) * Rational::pow2(i + 1);
}

}  // namespace aurv::algo
