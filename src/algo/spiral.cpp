#include "algo/spiral.hpp"
#include <cstdlib>

#include "support/check.hpp"

namespace aurv::algo {

namespace {

using numeric::Rational;
using program::Instruction;
using program::Program;

// Leg structure of the standard expanding square spiral with pitch p:
// E p, N p, W 2p, S 2p, E 3p, N 3p, W 4p, S 4p, ... — leg k (1-based) has
// length ceil(k/2) * p and direction cycling E, N, W, S. After leg k the
// spiral's bounding half-side is ceil(k/2) * p; covering half-side 2^i
// therefore needs k up to 2 * 2^(2i).

constexpr double kHeadings[4] = {0.0, 1.57079632679489661923, 3.14159265358979323846,
                                 4.71238898038468985769};

struct LegPlan {
  std::uint64_t legs;       // number of spiral legs
  std::int64_t end_x_steps; // net displacement at the end, in pitch units
  std::int64_t end_y_steps;
};

LegPlan plan_legs(std::uint32_t i) {
  const std::int64_t target_steps = std::int64_t{1} << (2 * i);  // 2^i / (1/2^i)
  std::int64_t x = 0;
  std::int64_t y = 0;
  std::uint64_t k = 0;
  while (true) {
    ++k;
    const std::int64_t length = static_cast<std::int64_t>((k + 1) / 2);
    switch (k % 4) {
      case 1: x += length; break;  // E
      case 2: y += length; break;  // N
      case 3: x -= length; break;  // W
      case 0: y -= length; break;  // S
    }
    // The spiral's bounding half-side is ~length/2 (E-legs push the east
    // edge to ceil(length/2), W-legs the west edge to -length/2), so the
    // legs must reach twice the target half-side, plus a ring of margin so
    // the outermost full ring strictly encloses the square's corners.
    if (length >= 2 * target_steps + 2) {
      if (k % 4 == 0) return {k, x, y};  // close the ring on a South leg
    }
  }
}

Program spiral_search_impl(std::uint32_t i) {
  const Rational pitch = Rational::dyadic(1, i);
  const LegPlan plan = plan_legs(i);
  for (std::uint64_t k = 1; k <= plan.legs; ++k) {
    const std::int64_t length = static_cast<std::int64_t>((k + 1) / 2);
    const Instruction leg =
        program::go(kHeadings[k % 4 == 0 ? 3 : (k % 4) - 1], Rational(length) * pitch);
    co_yield leg;
  }
  // Axis-aligned return to the start (Lemma 3.1-style composability).
  if (plan.end_x_steps != 0) {
    const Instruction back_x =
        program::go(plan.end_x_steps > 0 ? program::kWest : program::kEast,
                    Rational(std::abs(plan.end_x_steps)) * pitch);
    co_yield back_x;
  }
  if (plan.end_y_steps != 0) {
    const Instruction back_y =
        program::go(plan.end_y_steps > 0 ? program::kSouth : program::kNorth,
                    Rational(std::abs(plan.end_y_steps)) * pitch);
    co_yield back_y;
  }
}

}  // namespace

Program spiral_search(std::uint32_t i) {
  AURV_CHECK_MSG(i >= 1 && i <= kMaxSpiralIndex, "spiral_search: index out of range");
  return spiral_search_impl(i);
}

Rational spiral_search_duration(std::uint32_t i) {
  AURV_CHECK_MSG(i >= 1 && i <= kMaxSpiralIndex, "spiral_search_duration: out of range");
  const LegPlan plan = plan_legs(i);
  // Sum of leg lengths: sum_{k=1..K} ceil(k/2); plus the return legs.
  numeric::BigInt steps(0);
  for (std::uint64_t k = 1; k <= plan.legs; ++k) {
    steps += numeric::BigInt(static_cast<long long>((k + 1) / 2));
  }
  steps += numeric::BigInt(std::abs(plan.end_x_steps));
  steps += numeric::BigInt(std::abs(plan.end_y_steps));
  return Rational(steps) * Rational::dyadic(1, i);
}

Program cgkk_spiral() {
  for (std::uint32_t i = 1;; ++i) {
    AURV_CHECK_MSG(i <= kMaxSpiralIndex, "cgkk_spiral: phase index overflow");
    for (const program::Instruction& instruction : spiral_search_impl(i)) {
      co_yield instruction;
    }
  }
}

}  // namespace aurv::algo
