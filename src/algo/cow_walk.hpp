// The paper's two search procedures:
//
//   LinearCowWalk(i)  (Algorithm 3) — the first i doubling steps of the
//   classic cow-path linear search: for j = 1..i, go East 2^j, West 2^(j+1),
//   East 2^j. Visits every point of the local x-axis within distance 2^i
//   and returns to its start.
//
//   PlanarCowWalk(i)  (Algorithm 2) — a LinearCowWalk(i) from every point
//   (0, k/2^i), |k| <= 2^(2i), of the local y-axis: sweeps up from y = 0 to
//   y = 2^i in 1/2^i steps, returns, sweeps down to y = -2^i, returns.
//   Gets within 1/2^i local units of every point of the square
//   [-2^i, 2^i]^2 (Claim 3.7) and returns to its start (Lemma 3.1).
//
// Both are finite programs; i is capped at 30 so iteration counts (2^(2i))
// fit comfortably in 64 bits — the simulator's event fuel is exhausted long
// before that bound matters.
#pragma once

#include <cstdint>

#include "program/instruction.hpp"

namespace aurv::algo {

inline constexpr std::uint32_t kMaxCowWalkIndex = 30;

/// Algorithm 3. Requires 1 <= i <= kMaxCowWalkIndex (checked).
[[nodiscard]] program::Program linear_cow_walk(std::uint32_t i);

/// Algorithm 2. Requires 1 <= i <= kMaxCowWalkIndex (checked).
[[nodiscard]] program::Program planar_cow_walk(std::uint32_t i);

/// Total local duration of LinearCowWalk(i): sum_j 2^(j+2) = 2^(i+3) - 8.
[[nodiscard]] numeric::Rational linear_cow_walk_duration(std::uint32_t i);

/// Total local duration of PlanarCowWalk(i).
[[nodiscard]] numeric::Rational planar_cow_walk_duration(std::uint32_t i);

}  // namespace aurv::algo
