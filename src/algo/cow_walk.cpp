#include "algo/cow_walk.hpp"

#include "support/check.hpp"

namespace aurv::algo {

using numeric::Rational;
using program::go_east;
using program::go_north;
using program::go_south;
using program::go_west;
using program::Instruction;
using program::Program;

namespace {

// Coroutine bodies are wrapped by eager-checking functions below so that
// argument validation throws at the call site, not at the first next().

// Yielded instructions are bound to named locals before co_yield; see the
// generator.hpp note on the GCC 12 temporary-destruction bug.

Program linear_cow_walk_impl(std::uint32_t i) {
  for (std::uint32_t j = 1; j <= i; ++j) {
    const Instruction out_east = go_east(Rational::pow2(j));
    const Instruction out_west = go_west(Rational::pow2(j + 1));
    co_yield out_east;
    co_yield out_west;
    co_yield out_east;
  }
}

Program planar_cow_walk_impl(std::uint32_t i) {
  const Rational step = Rational::dyadic(1, i);             // 1/2^i
  const Rational sweep = Rational::pow2(i);                 // 2^i
  const std::uint64_t rungs = std::uint64_t{1} << (2 * i);  // 2^(2i)

  for (const Instruction& instruction : linear_cow_walk_impl(i)) co_yield instruction;
  for (int pass = 1; pass <= 2; ++pass) {
    const Instruction rung_step = pass == 1 ? go_north(step) : go_south(step);
    for (std::uint64_t k = 0; k < rungs; ++k) {
      co_yield rung_step;
      for (const Instruction& instruction : linear_cow_walk_impl(i)) co_yield instruction;
    }
    const Instruction return_sweep = pass == 1 ? go_south(sweep) : go_north(sweep);
    co_yield return_sweep;
  }
}

}  // namespace

Program linear_cow_walk(std::uint32_t i) {
  AURV_CHECK_MSG(i >= 1 && i <= kMaxCowWalkIndex, "linear_cow_walk: index out of range");
  return linear_cow_walk_impl(i);
}

Program planar_cow_walk(std::uint32_t i) {
  AURV_CHECK_MSG(i >= 1 && i <= kMaxCowWalkIndex, "planar_cow_walk: index out of range");
  return planar_cow_walk_impl(i);
}

Rational linear_cow_walk_duration(std::uint32_t i) {
  AURV_CHECK_MSG(i >= 1 && i <= kMaxCowWalkIndex, "linear_cow_walk_duration: out of range");
  // sum_{j=1..i} (2^j + 2^(j+1) + 2^j) = sum 2^(j+2) = 2^(i+3) - 8.
  return Rational::pow2(i + 3) - Rational(8);
}

Rational planar_cow_walk_duration(std::uint32_t i) {
  AURV_CHECK_MSG(i >= 1 && i <= kMaxCowWalkIndex, "planar_cow_walk_duration: out of range");
  const Rational lcw = linear_cow_walk_duration(i);
  const Rational rungs(numeric::BigInt::pow2(2 * i));
  // (2*2^(2i) + 1) LinearCowWalks, 2*2^(2i) rung steps of 1/2^i, two sweeps 2^i.
  return (Rational(2) * rungs + Rational(1)) * lcw +
         Rational(2) * rungs * Rational::dyadic(1, i) + Rational(2) * Rational::pow2(i);
}

}  // namespace aurv::algo
