// SpiralSearch — the alternative planar search procedure the paper mentions
// in Section 3.1.1 ("there are multiple ways of designing such a procedure,
// for instance via spiral movements or via series of parallel linear
// searches"; Algorithm 1 uses the latter, PlanarCowWalk). Implemented to
// make that design choice an executable ablation (TAB-8): an expanding
// square spiral of pitch 1/2^i covering the square [-2^i, 2^i]^2, followed
// by an axis-aligned return to the start so it composes like PlanarCowWalk
// (Lemma 3.1's return-to-start invariant).
//
// Coverage: consecutive spiral arms are one pitch apart, so every point of
// the square is within 1/2^i local units of the path — the same guarantee
// Claim 3.7 gives for PlanarCowWalk — at roughly a quarter of the walked
// length (the cow walk re-traverses each rung line three times and returns
// to the axis after every rung; the spiral visits each arm once).
#pragma once

#include <cstdint>

#include "program/instruction.hpp"

namespace aurv::algo {

/// Spiral phases are capped lower than cow walks: the duration helper
/// iterates the legs (4 * 2^(2i) of them).
inline constexpr std::uint32_t kMaxSpiralIndex = 12;

/// The expanding square spiral of phase i. Requires 1 <= i <=
/// kMaxSpiralIndex (checked). Finite; starts and ends at the origin.
[[nodiscard]] program::Program spiral_search(std::uint32_t i);

/// Total local duration of spiral_search(i) (exact).
[[nodiscard]] numeric::Rational spiral_search_duration(std::uint32_t i);

/// CGKK variant built on the spiral instead of PlanarCowWalk: iterated
/// spiral_search(i), i = 1, 2, .... Satisfies the same lock-step fixed-point
/// contract (any expanding search with vanishing resolution does); TAB-8
/// compares the two on type-4 instances.
[[nodiscard]] program::Program cgkk_spiral();

}  // namespace aurv::algo
