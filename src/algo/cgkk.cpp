#include "algo/cgkk.hpp"

#include "algo/cow_walk.hpp"
#include "support/check.hpp"

namespace aurv::algo {

using numeric::Rational;
using program::Instruction;
using program::Program;

Program cgkk() {
  for (std::uint32_t i = 1;; ++i) {
    AURV_CHECK_MSG(i <= kMaxCowWalkIndex, "cgkk: phase index overflow");
    for (const Instruction& instruction : planar_cow_walk(i)) co_yield instruction;
  }
}

Program cgkk_extended() {
  for (std::uint32_t i = 1;; ++i) {
    AURV_CHECK_MSG(i <= kMaxCowWalkIndex, "cgkk_extended: phase index overflow");
    for (const Instruction& instruction : planar_cow_walk(i)) co_yield instruction;
    // Long waits let the faster-clocked agent finish an entire search while
    // a slower-clocked one is still idle (the type-3 mechanism, Lemma 3.4).
    const Instruction pause = program::wait(Rational::pow2(15ULL * i * i));
    co_yield pause;
    for (const Instruction& instruction : planar_cow_walk(i)) co_yield instruction;
  }
}

}  // namespace aurv::algo
