// CGKK — our reimplementation of the procedure from [18] (Czyzowicz,
// Gąsieniec, Killick, Kranakis, "Symmetry breaking in the plane", PODC
// 2019), which the paper imports as a black box with circles replaced by
// inscribed squares (Section 2). Contract the paper relies on: rendezvous
// for every instance with simultaneous wake-up (t = 0) that is either
// non-synchronous, or has different orientations and equal chirality
// (phi != 0, chi = 1).
//
// Our build (see DESIGN.md "Substituted components"): iterated
// PlanarCowWalk(i), i = 1, 2, .... For the instances Algorithm 1 actually
// feeds to CGKK — all of which have tau = 1 and t = 0 — the two agents stay
// in lock-step, so B(s) = (x,y) + M*A(s) with M = v*R(phi)*diag(1,chi) at
// every instant, and the inter-agent gap vanishes at the fixed point
// p* = (I-M)^{-1}(x,y); I-M is invertible precisely on the contract's
// domain restricted to tau = 1. The expanding grid search passes within
// r/(1+v*tau) of p* at some phase, forcing rendezvous.
//
// Standalone coverage of the remaining contract cases (tau != 1, t = 0) is
// provided by cgkk_extended(), which interleaves the pure search with the
// type-3 wait-and-search mechanism (long waits desynchronize agents whose
// clock rates differ).
#pragma once

#include "program/instruction.hpp"

namespace aurv::algo {

/// The infinite pure-search CGKK program (iterated PlanarCowWalk).
[[nodiscard]] program::Program cgkk();

/// CGKK with interleaved doubling waits; additionally covers tau != 1,
/// t = 0 instances standalone. Not used by Algorithm 1 (which handles
/// tau != 1 in its own type-3 block).
[[nodiscard]] program::Program cgkk_extended();

}  // namespace aurv::algo
