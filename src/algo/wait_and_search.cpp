#include "algo/wait_and_search.hpp"

#include "algo/cow_walk.hpp"
#include "support/check.hpp"

namespace aurv::algo {

using numeric::Rational;
using program::Instruction;
using program::Program;

Program wait_and_search() {
  for (std::uint32_t i = 1;; ++i) {
    AURV_CHECK_MSG(i <= kMaxCowWalkIndex, "wait_and_search: phase index overflow");
    const Instruction pause = program::wait(wait_and_search_pause(i));
    co_yield pause;
    for (const Instruction& instruction : planar_cow_walk(i)) co_yield instruction;
  }
}

Rational wait_and_search_pause(std::uint32_t i) {
  return Rational::pow2(15ULL * i * i);
}

}  // namespace aurv::algo
